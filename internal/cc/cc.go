// Package cc is the mini compiler: it lowers MIR (internal/ir) to x86-64
// subset machine code in object form (internal/obj).
//
// cc exists so the repository can reproduce the paper's *baselines*: plain
// -O2 builds, PGO builds (-fprofile-use with source-keyed, context-
// insensitive profiles — the Figure 2 accuracy loss), and LTO builds
// (cross-module inlining). gobolt then runs on cc+ld output exactly the
// way BOLT runs on GCC/Clang output.
package cc

import (
	"fmt"
	"sort"

	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// SrcKey identifies a source location; the PGO profile is keyed by it.
// Keying by (file, line) — with no inline context — is precisely the
// accuracy limitation of compiler-level profile retrofitting the paper
// motivates with Figure 2: all inlined copies of a line share one entry.
type SrcKey struct {
	File string
	Line int32
}

// BranchStat aggregates outcomes of the conditional branch at a source
// line, keyed by the *successor's* source location (the binary-level
// taken/fall-through polarity is a layout artifact; successor lines are
// stable across builds, the way AutoFDO uses discriminators).
type BranchStat struct {
	Total  uint64
	BySucc map[SrcKey]uint64
}

// SourceProfile is an AutoFDO-style profile mapped back to source.
type SourceProfile struct {
	Branch map[SrcKey]*BranchStat
	Call   map[SrcKey]uint64 // per-call-site execution counts
	Func   map[string]uint64 // per-function entry counts
}

// NewSourceProfile returns an empty profile.
func NewSourceProfile() *SourceProfile {
	return &SourceProfile{
		Branch: map[SrcKey]*BranchStat{},
		Call:   map[SrcKey]uint64{},
		Func:   map[string]uint64{},
	}
}

// AddBranchSample accumulates `count` executions of the branch at key
// that continued to succ.
func (sp *SourceProfile) AddBranchSample(key, succ SrcKey, count uint64) {
	st := sp.Branch[key]
	if st == nil {
		st = &BranchStat{BySucc: map[SrcKey]uint64{}}
		sp.Branch[key] = st
	}
	st.Total += count
	st.BySucc[succ] += count
}

// Options configures a build.
type Options struct {
	// LTO allows cross-module inlining (link-time optimization).
	LTO bool
	// PGO, when non-nil, enables profile-guided inlining, block layout,
	// and branch polarity using the (source-keyed) profile.
	PGO *SourceProfile

	// AlignFuncs is the function start alignment (default 16).
	AlignFuncs int
	// AlignBlocks pads branch-target blocks of loops to 16 bytes with
	// NOPs, like -falign-loops; gobolt strips these (default true).
	AlignBlocks bool

	// TinyInlineOps is the always-inline size threshold (default 3).
	TinyInlineOps int
	// PGOInlineOps is the PGO hot-call-site inline threshold (default 14).
	PGOInlineOps int
	// HotCallCount is the minimum profile count for PGO inlining
	// (default 32).
	HotCallCount uint64
}

func (o Options) withDefaults() Options {
	if o.AlignFuncs == 0 {
		o.AlignFuncs = 16
	}
	if o.TinyInlineOps == 0 {
		o.TinyInlineOps = 3
	}
	if o.PGOInlineOps == 0 {
		o.PGOInlineOps = 14
	}
	if o.HotCallCount == 0 {
		o.HotCallCount = 32
	}
	return o
}

// DefaultOptions returns the plain -O2 configuration.
func DefaultOptions() Options { return Options{AlignBlocks: true}.withDefaults() }

// Compile lowers the program to one object per module, plus a synthetic
// runtime object providing __throw.
func Compile(p *ir.Program, opts Options) ([]*obj.Object, error) {
	opts = opts.withDefaults()
	p.Finalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}

	// Clone functions so inlining never mutates the caller's program.
	work := cloneProgram(p)
	inlineAll(work, opts)

	sharedFuncs := map[string]bool{}
	for _, m := range work.Modules {
		if m.Shared {
			for _, f := range m.Funcs {
				sharedFuncs[f.Name] = true
			}
		}
	}

	var objs []*obj.Object
	for _, m := range work.Modules {
		o := &obj.Object{Name: m.Name}
		for _, f := range m.Funcs {
			order := layoutBlocks(f, opts)
			of, globals, err := lowerFunc(sharedFuncs, f, order, opts)
			if err != nil {
				return nil, fmt.Errorf("cc: %s: %w", f.Name, err)
			}
			of.Shared = m.Shared
			o.Funcs = append(o.Funcs, of)
			o.Globals = append(o.Globals, globals...)
		}
		objs = append(objs, o)
	}

	// Global data lives in a dedicated object.
	dataObj := &obj.Object{Name: "__data__"}
	for _, g := range work.Globals {
		og := &obj.Global{
			Name: g.Name, Data: g.Data, Align: g.Align, Writable: g.Writable,
		}
		for _, fr := range g.FuncRefs {
			og.Relocs = append(og.Relocs, obj.Reloc{
				Off: fr.Off, Type: obj.RelAbs64, Sym: fr.Name,
			})
		}
		dataObj.Globals = append(dataObj.Globals, og)
	}
	objs = append(objs, dataObj)

	// Runtime: __throw is the unwinder entry point the VM intercepts.
	rt := &obj.Object{Name: "__runtime__"}
	rt.Funcs = append(rt.Funcs, &obj.Func{
		Name:  "__throw",
		Bytes: []byte{0x0F, 0x0B}, // ud2; never actually executed
		Align: 16,
	})
	objs = append(objs, rt)
	return objs, nil
}

// cloneProgram deep-copies the parts the compiler mutates.
func cloneProgram(p *ir.Program) *ir.Program {
	q := &ir.Program{Globals: p.Globals}
	for _, m := range p.Modules {
		mm := &ir.Module{Name: m.Name, Shared: m.Shared}
		for _, f := range m.Funcs {
			mm.Funcs = append(mm.Funcs, cloneFunc(f))
		}
		q.Modules = append(q.Modules, mm)
	}
	q.Finalize()
	return q
}

func cloneFunc(f *ir.Func) *ir.Func {
	g := &ir.Func{
		Name: f.Name, File: f.File, Line: f.Line,
		FrameSlots: f.FrameSlots,
		SavedRegs:  append([]isa.Reg(nil), f.SavedRegs...),
		RepzRet:    f.RepzRet,
		Global:     f.Global,
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{Index: b.Index, Line: b.Line, Cold: b.Cold}
		nb.Ops = append([]ir.Op(nil), b.Ops...)
		nb.Term = b.Term
		nb.Term.Targets = append([]int(nil), b.Term.Targets...)
		g.Blocks = append(g.Blocks, nb)
	}
	return g
}

// sortedKeys is a tiny helper for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

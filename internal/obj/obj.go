// Package obj defines the in-memory object-file model passed from the mini
// compiler (internal/cc) to the linker (internal/ld). One Object roughly
// corresponds to a relocatable .o: functions and globals with symbolic
// relocations, CFI programs, exception call-site tables, and line info.
package obj

import "gobolt/internal/cfi"

// Relocation kinds, mirroring elfx's subset.
const (
	RelPC32  uint32 = 2   // S + A - P
	RelPLT32 uint32 = 4   // like PC32 but may be routed through a PLT stub
	RelAbs64 uint32 = 1   // S + A
	RelJT32  uint32 = 250 // S + A - JTBASE: PIC jump-table entry, resolved and *discarded* by the linker
)

// Reloc is a symbolic reference patched by the linker. References carry
// either a symbol name (Sym, the compiler/linker path) or a packed
// numeric symbol (SymID, gobolt's emission path — see internal/core's
// sym ID encoding); producers set exactly one of the two.
type Reloc struct {
	Off    uint32 // byte offset of the patch site within Bytes/Data
	Type   uint32
	Sym    string
	SymID  SymID
	Addend int64
}

// CallSite is an exception-table entry with function-relative offsets.
type CallSite struct {
	Start  uint32 // code offset of the covered region
	Len    uint32
	LPOff  uint32 // code offset of the landing pad within the same function
	Action int32
}

// LineEntry records that code at Off originates from File:Line.
type LineEntry struct {
	Off  uint32
	File string
	Line int32
}

// Func is one compiled function.
type Func struct {
	Name      string
	Bytes     []byte
	Align     int
	Relocs    []Reloc
	CFI       []cfi.PCInst
	CallSites []CallSite
	Lines     []LineEntry
	// Shared marks functions that belong to the simulated shared library:
	// non-LTO builds route calls to them through PLT stubs.
	Shared bool
	// Global marks externally visible symbols (STB_GLOBAL).
	Global bool
}

// Global is an initialized data or rodata blob.
type Global struct {
	Name     string
	Data     []byte
	Align    int
	Writable bool // .data if true, .rodata otherwise
	Relocs   []Reloc
	// NoEmitRelocs suppresses these relocations from --emit-relocs output,
	// modeling the PIC jump-table offsets the paper notes are resolved
	// internally and invisible to post-link tools (§3.2).
	NoEmitRelocs bool
}

// Object is one compilation unit's output.
type Object struct {
	Name    string
	Funcs   []*Func
	Globals []*Global
}

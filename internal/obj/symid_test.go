package obj

import "testing"

func TestSymIDRoundTrip(t *testing.T) {
	f := FuncSym(12345)
	if f.Kind() != SymFunc || f.FuncOrd() != 12345 {
		t.Errorf("FuncSym: kind %v ord %d", f.Kind(), f.FuncOrd())
	}
	b := BlockSym(7, MaxFuncBlocks-1)
	if b.Kind() != SymBlock {
		t.Errorf("BlockSym kind %v", b.Kind())
	}
	if ord, idx := b.BlockRef(); ord != 7 || idx != MaxFuncBlocks-1 {
		t.Errorf("BlockRef = (%d, %d), want (7, %d)", ord, idx, MaxFuncBlocks-1)
	}
	const addr = uint64(0x7FFF_FFFF_1234)
	a := AbsSym(addr)
	if a.Kind() != SymAbs || a.AbsAddr() != addr {
		t.Errorf("AbsSym: kind %v addr %#x", a.Kind(), a.AbsAddr())
	}
	var zero SymID
	if zero.Kind() != SymNone {
		t.Errorf("zero SymID kind %v, want SymNone", zero.Kind())
	}
}

func TestSymIDDistinct(t *testing.T) {
	// The kind tag must separate payloads that share raw bits.
	if FuncSym(1) == SymID(1) || BlockSym(0, 1) == AbsSym(1) {
		t.Error("kinds collide on equal payloads")
	}
	// Block index and function ordinal occupy disjoint fields.
	x := BlockSym(3, 5)
	y := BlockSym(5, 3)
	if x == y {
		t.Error("BlockSym(3,5) == BlockSym(5,3)")
	}
}

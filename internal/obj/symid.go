package obj

// SymID is a packed numeric symbol reference for emission relocations.
// gobolt's rewriter resolves symbols by ordinal, not name, to keep the
// hot emit phase free of string interning; the packing is
//
//	kind<<61 | payload
//
// where the payload layout depends on the kind:
//
//	SymFunc:  payload = function ordinal
//	SymBlock: payload = ordinal<<24 | block index
//	SymAbs:   payload = absolute address (data, PLT stubs, unmoved code)
//
// The encoding is an implementation detail of this package: construct
// IDs with FuncSym/BlockSym/AbsSym and inspect them with Kind and the
// per-kind accessors. Raw shift/mask expressions on SymID outside
// internal/obj are flagged by the boltvet `symid` analyzer.
type SymID uint64

// SymKind discriminates the payload layout of a packed SymID.
type SymKind uint8

// Symbol kinds. SymNone is the zero value of an unset ID.
const (
	SymNone  SymKind = 0
	SymFunc  SymKind = 1
	SymBlock SymKind = 2
	SymAbs   SymKind = 3
)

const (
	symKindShift       = 61
	symPayload   SymID = 1<<symKindShift - 1
	symBlockBits       = 24
	symBlockIdx  SymID = 1<<symBlockBits - 1
)

// MaxFuncBlocks is the block-index capacity of a SymBlock payload: a
// function with more blocks than this cannot be emitted.
const MaxFuncBlocks = 1 << symBlockBits

// FuncSym packs a function-entry reference by ordinal.
func FuncSym(ord int) SymID { return SymID(SymFunc)<<symKindShift | SymID(ord) }

// BlockSym packs a basic-block reference: function ordinal plus block
// index within that function.
func BlockSym(ord, idx int) SymID {
	return SymID(SymBlock)<<symKindShift | SymID(ord)<<symBlockBits | SymID(idx)
}

// AbsSym packs an absolute address (data, PLT stubs, unmoved code).
func AbsSym(addr uint64) SymID { return SymID(SymAbs)<<symKindShift | SymID(addr) }

// Kind returns the payload discriminator.
func (id SymID) Kind() SymKind { return SymKind(id >> symKindShift) }

// FuncOrd returns the function ordinal of a SymFunc ID.
func (id SymID) FuncOrd() int { return int(id & symPayload) }

// BlockRef returns the function ordinal and block index of a SymBlock ID.
func (id SymID) BlockRef() (ord, idx int) {
	payload := id & symPayload
	return int(payload >> symBlockBits), int(payload & symBlockIdx)
}

// AbsAddr returns the absolute address of a SymAbs ID.
func (id SymID) AbsAddr() uint64 { return uint64(id & symPayload) }

// Package flow implements minimum-cost maximum-flow profile inference:
// the production-grade replacement for the paper's §5.1 "non-ideal
// algorithm" that reconstructs consistent basic-block and edge counts
// from sparse or inconsistent sample data.
//
// The formulation follows the classic profile-inference reduction (also
// used by the stale-profile-matching work, arXiv:2401.17168): every
// measured count is a *baseline* flow that may violate conservation;
// the violations become supplies and demands on a residual network, and
// a min-cost max-flow run routes the imbalance along the cheapest CFG
// paths. Costs encode how much we trust each kind of adjustment:
//
//   - adding flow to a fall-through edge is cheapest (the static
//     compiler's layout is trusted, paper §5.2),
//   - adding flow to a taken forward branch costs more, a backward
//     branch more still,
//   - discarding measured counts (blocks or edges) is expensive —
//     samples are evidence,
//   - pseudo source/sink arcs absorb entry/exit imbalance for free, so
//     a function whose observed entries and exits disagree still solves.
//
// The result conserves flow exactly: for every block with successors,
// the block count equals the sum of its out-edge counts (flowAccuracy
// 1.0), something the old proportional estimator's per-successor
// truncation could never guarantee.
package flow

import "math"

// Jump-weight costs for adding flow to a CFG edge, exported so callers
// (internal/core) classify edges against the static layout.
const (
	// CostFallThrough is the cost of routing extra flow down the
	// fall-through path — the cheapest adjustment, per §5.2's "trust the
	// static layout" rule.
	CostFallThrough = 1
	// CostTaken is the cost for a taken forward branch.
	CostTaken = 2
	// CostBackward is the cost for a branch against the layout order.
	CostBackward = 4
)

// Internal cost structure of the deviation network.
const (
	// costColdBlock guards never-sampled blocks: routing flow through a
	// block with zero samples pays this on top of its edge costs, so the
	// solver does not invent counts on cold paths unless conservation
	// forces it (the old estimator's "+1 smoothing" did exactly that).
	costColdBlock = 2
	// costCut is the cost per unit of *discarding* a measured count —
	// an order of magnitude above any routing cost.
	costCut = 10
	// costEmergency backstops feasibility on pathological CFGs (cycles
	// unreachable from any entry); never on a cheapest path otherwise.
	costEmergency = 10000
)

const inf = int64(math.MaxInt64) / 4

// Succ is one CFG edge of the inference problem.
type Succ struct {
	To int
	// Weight is the measured edge count (LBR / repaired profiles);
	// 0 means unmeasured.
	Weight uint64
	// Cost is the per-unit cost of adding flow to this edge — one of
	// CostFallThrough/CostTaken/CostBackward (values < 1 are clamped).
	Cost int64
}

// Node is one basic block of the inference problem. Nodes are indexed by
// slice position; Succ.To refers to those indices.
type Node struct {
	// Weight is the measured execution count (PC samples or LBR-derived
	// block counts).
	Weight  uint64
	Succs   []Succ
	IsEntry bool
}

// Result is a flow-conserving count assignment.
type Result struct {
	NodeCounts []uint64
	// EdgeCounts parallels Node.Succs: EdgeCounts[i][k] is the inferred
	// count of nodes[i].Succs[k].
	EdgeCounts [][]uint64
	// Residual is the imbalance the solver could not route. It is 0 for
	// every CFG whose blocks are reachable from an entry or a
	// predecessor-less block (i.e. every CFG a disassembler builds); a
	// nonzero value means the dangling-block post-pass rebalanced the
	// affected blocks from their edge flows instead.
	Residual int64
}

// Infer solves minimum-cost maximum-flow over the CFG and returns
// conserving counts. Deterministic: identical inputs produce identical
// outputs regardless of caller parallelism.
func Infer(nodes []Node) Result {
	n := len(nodes)
	res := Result{
		NodeCounts: make([]uint64, n),
		EdgeCounts: make([][]uint64, n),
	}
	for i := range nodes {
		res.EdgeCounts[i] = make([]uint64, len(nodes[i].Succs))
	}
	if n == 0 {
		return res
	}

	hasPred := make([]bool, n)
	for i := range nodes {
		for _, e := range nodes[i].Succs {
			if e.To >= 0 && e.To < n {
				hasPred[e.To] = true
			}
		}
	}

	// Node layout: block i splits into in=2i, out=2i+1; then the
	// function-boundary pseudo nodes S and T, then the supply/demand
	// terminals SS and TT.
	in := func(i int) int { return 2 * i }
	out := func(i int) int { return 2*i + 1 }
	S, T := 2*n, 2*n+1
	SS, TT := 2*n+2, 2*n+3
	s := newSolver(2*n + 4)

	// net accumulates baseline-flow imbalance per node: positive = the
	// baselines produce surplus here, negative = they consume more than
	// they deliver.
	net := make([]int64, 2*n+4)

	blockInc := make([]int, n) // arc ids: raising a block count
	blockRed := make([]int, n) // arc ids: cutting measured block samples
	edgeInc := make([][]int, n)
	edgeRed := make([][]int, n)

	for i := range nodes {
		w := int64(nodes[i].Weight)
		incCost := int64(0)
		if w == 0 {
			incCost = costColdBlock
		}
		blockInc[i] = s.addArc(in(i), out(i), inf, incCost)
		blockRed[i] = -1
		if w > 0 {
			blockRed[i] = s.addArc(out(i), in(i), w, costCut)
			// Baseline block flow: consumed at in, produced at out.
			net[in(i)] -= w
			net[out(i)] += w
		}

		edgeInc[i] = make([]int, len(nodes[i].Succs))
		edgeRed[i] = make([]int, len(nodes[i].Succs))
		for k, e := range nodes[i].Succs {
			cost := e.Cost
			if cost < 1 {
				cost = 1
			}
			edgeInc[i][k] = s.addArc(out(i), in(e.To), inf, cost)
			edgeRed[i][k] = -1
			if ew := int64(e.Weight); ew > 0 {
				edgeRed[i][k] = s.addArc(in(e.To), out(i), ew, costCut)
				net[out(i)] -= ew
				net[in(e.To)] += ew
			}
		}

		// Function-boundary arcs: entries (and predecessor-less blocks,
		// e.g. landing pads) draw inflow from S; exit blocks drain to T.
		if nodes[i].IsEntry || !hasPred[i] {
			s.addArc(S, in(i), inf, 0)
		} else {
			s.addArc(S, in(i), inf, costEmergency)
		}
		if len(nodes[i].Succs) == 0 {
			s.addArc(out(i), T, inf, 0)
		} else {
			s.addArc(out(i), T, inf, costEmergency)
		}
	}
	// Entry/exit imbalance circulates for free.
	s.addArc(T, S, inf, 0)

	// Supplies and demands from the baseline imbalance.
	var supply int64
	for v, d := range net {
		if d > 0 {
			s.addArc(SS, v, d, 0)
			supply += d
		} else if d < 0 {
			s.addArc(v, TT, -d, 0)
		}
	}
	routed, _ := s.run(SS, TT)
	res.Residual = supply - routed

	// Read back: final count = baseline + increase − reduction.
	for i := range nodes {
		c := int64(nodes[i].Weight) + s.flow(blockInc[i])
		if blockRed[i] >= 0 {
			c -= s.flow(blockRed[i])
		}
		if c < 0 {
			c = 0
		}
		res.NodeCounts[i] = uint64(c)
		for k, e := range nodes[i].Succs {
			ec := int64(e.Weight) + s.flow(edgeInc[i][k])
			if edgeRed[i][k] >= 0 {
				ec -= s.flow(edgeRed[i][k])
			}
			if ec < 0 {
				ec = 0
			}
			res.EdgeCounts[i][k] = uint64(ec)
		}
	}
	rebalance(nodes, &res)
	return res
}

// rebalance is the dangling-block post-pass: it pins every block count
// to its own out-flow so the result conserves flow even when the solver
// left residual imbalance (unreachable cycles, overflow-clamped counts).
// On a fully-routed solution this is a no-op — conservation already
// holds arc-by-arc — so the common path pays one verification sweep.
func rebalance(nodes []Node, res *Result) {
	inflow := make([]uint64, len(nodes))
	for i := range nodes {
		for k, e := range nodes[i].Succs {
			inflow[e.To] += res.EdgeCounts[i][k]
		}
	}
	for i := range nodes {
		if len(nodes[i].Succs) > 0 {
			var out uint64
			for k := range nodes[i].Succs {
				out += res.EdgeCounts[i][k]
			}
			res.NodeCounts[i] = out
			continue
		}
		// Exit or dangling block: keep the larger of its inferred count
		// and what actually flows in.
		if inflow[i] > res.NodeCounts[i] {
			res.NodeCounts[i] = inflow[i]
		}
	}
}

// arc is one directed residual edge; arcs are stored in pairs so arc
// id^1 is always the reverse.
type arc struct {
	to   int32
	cap  int64
	cost int64
}

// solver is a successive-shortest-path min-cost max-flow engine (SPFA
// for the shortest path, so residual negative costs are fine). Sized for
// per-function CFGs: tens to a few hundred blocks.
type solver struct {
	arcs []arc
	adj  [][]int32
}

func newSolver(n int) *solver { return &solver{adj: make([][]int32, n)} }

// addArc inserts a forward arc and its zero-capacity reverse; the
// returned id addresses the forward arc (flow() reads it back).
func (s *solver) addArc(from, to int, capacity, cost int64) int {
	id := len(s.arcs)
	s.arcs = append(s.arcs,
		arc{to: int32(to), cap: capacity, cost: cost},
		arc{to: int32(from), cap: 0, cost: -cost})
	s.adj[from] = append(s.adj[from], int32(id))
	s.adj[to] = append(s.adj[to], int32(id+1))
	return id
}

// flow reports how much flow was pushed through arc id.
func (s *solver) flow(id int) int64 { return s.arcs[id^1].cap }

// run pushes flow from src to dst along successive cheapest residual
// paths until none remains; returns (flow, cost). Deterministic: the
// adjacency order is insertion order and SPFA relaxes strictly, so tied
// shortest paths always resolve the same way.
func (s *solver) run(src, dst int) (int64, int64) {
	n := len(s.adj)
	dist := make([]int64, n)
	inQueue := make([]bool, n)
	prevArc := make([]int32, n)
	var totalFlow, totalCost int64
	for {
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
		}
		dist[src] = 0
		queue := make([]int32, 0, n)
		queue = append(queue, int32(src))
		inQueue[src] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for _, id := range s.adj[u] {
				a := &s.arcs[id]
				if a.cap <= 0 {
					continue
				}
				if nd := du + a.cost; nd < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = id
					if !inQueue[a.to] {
						inQueue[a.to] = true
						queue = append(queue, a.to)
					}
				}
			}
		}
		if prevArc[dst] < 0 {
			return totalFlow, totalCost
		}
		push := inf
		for v := int32(dst); v != int32(src); {
			id := prevArc[v]
			if c := s.arcs[id].cap; c < push {
				push = c
			}
			v = s.arcs[id^1].to
		}
		for v := int32(dst); v != int32(src); {
			id := prevArc[v]
			s.arcs[id].cap -= push
			s.arcs[id^1].cap += push
			v = s.arcs[id^1].to
		}
		totalFlow += push
		totalCost += push * dist[dst]
	}
}

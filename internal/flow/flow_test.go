package flow

import (
	"math/rand"
	"testing"
)

// checkConserved asserts the result satisfies the flow equations: every
// node with successors carries exactly its out-flow, and every node
// that is neither an entry nor predecessor-less receives exactly its
// count as in-flow.
func checkConserved(t *testing.T, nodes []Node, res Result) {
	t.Helper()
	hasPred := make([]bool, len(nodes))
	inflow := make([]uint64, len(nodes))
	for i := range nodes {
		for k, e := range nodes[i].Succs {
			hasPred[e.To] = true
			inflow[e.To] += res.EdgeCounts[i][k]
		}
	}
	for i := range nodes {
		if len(nodes[i].Succs) > 0 {
			var out uint64
			for k := range nodes[i].Succs {
				out += res.EdgeCounts[i][k]
			}
			if res.NodeCounts[i] != out {
				t.Errorf("node %d: count %d != outflow %d", i, res.NodeCounts[i], out)
			}
		}
		if hasPred[i] && !nodes[i].IsEntry && res.NodeCounts[i] != inflow[i] {
			t.Errorf("node %d: count %d != inflow %d", i, res.NodeCounts[i], inflow[i])
		}
	}
}

// TestDiamondFromSamples reconstructs edges of a diamond CFG from block
// samples alone (the non-LBR case): entry -> {left, right} -> exit.
func TestDiamondFromSamples(t *testing.T) {
	nodes := []Node{
		{Weight: 100, IsEntry: true, Succs: []Succ{{To: 1, Cost: CostTaken}, {To: 2, Cost: CostFallThrough}}},
		{Weight: 30, Succs: []Succ{{To: 3, Cost: CostTaken}}},
		{Weight: 70, Succs: []Succ{{To: 3, Cost: CostFallThrough}}},
		{Weight: 100},
	}
	res := Infer(nodes)
	if res.Residual != 0 {
		t.Fatalf("residual %d", res.Residual)
	}
	checkConserved(t, nodes, res)
	if res.EdgeCounts[0][0] != 30 || res.EdgeCounts[0][1] != 70 {
		t.Errorf("split edges = %v, want [30 70]", res.EdgeCounts[0])
	}
	if res.NodeCounts[3] != 100 {
		t.Errorf("exit count = %d, want 100", res.NodeCounts[3])
	}
}

// TestColdEntryInflated: a hot loop body with an unsampled entry block
// must pull the entry count up to the loop's entry flow — the scenario
// behind the fn.ExecCount bug this PR fixes.
func TestColdEntryInflated(t *testing.T) {
	// entry(0 samples) -> loop(1000) -> loop | exit(10)
	nodes := []Node{
		{Weight: 0, IsEntry: true, Succs: []Succ{{To: 1, Cost: CostFallThrough}}},
		{Weight: 1000, Succs: []Succ{{To: 1, Cost: CostBackward}, {To: 2, Cost: CostFallThrough}}},
		{Weight: 10},
	}
	res := Infer(nodes)
	checkConserved(t, nodes, res)
	if res.NodeCounts[0] == 0 {
		t.Fatal("entry count stayed 0 despite hot loop downstream")
	}
	if res.NodeCounts[1] != 1000 {
		t.Errorf("loop count = %d, want 1000 (samples preserved)", res.NodeCounts[1])
	}
	// Loop entry flow + back edge must feed the body exactly.
	if got := res.EdgeCounts[0][0] + res.EdgeCounts[1][0]; got != 1000 {
		t.Errorf("loop inflow = %d, want 1000", got)
	}
}

// TestSurplusPrefersFallThrough: with equal evidence, surplus flow must
// ride the cheaper (fall-through) edge, mirroring §5.2's layout trust.
func TestSurplusPrefersFallThrough(t *testing.T) {
	nodes := []Node{
		{Weight: 100, IsEntry: true, Succs: []Succ{{To: 1, Cost: CostTaken}, {To: 2, Cost: CostFallThrough}}},
		{Weight: 0, Succs: []Succ{{To: 3, Cost: CostTaken}}},
		{Weight: 0, Succs: []Succ{{To: 3, Cost: CostFallThrough}}},
		{Weight: 0},
	}
	res := Infer(nodes)
	checkConserved(t, nodes, res)
	if res.EdgeCounts[0][1] != 100 || res.EdgeCounts[0][0] != 0 {
		t.Errorf("surplus took the taken edge: %v", res.EdgeCounts[0])
	}
}

// TestLBRRepairMinimalAdjustment seeds measured edge counts that are
// slightly inconsistent (the LBR/stale case) and checks the solver
// repairs them without discarding the evidence.
func TestLBRRepairMinimalAdjustment(t *testing.T) {
	// entry(100) --90--> a(100) --100--> exit: the entry->a edge lost
	// 10 counts (sampling skid); repair must top it up, not cut a.
	nodes := []Node{
		{Weight: 100, IsEntry: true, Succs: []Succ{{To: 1, Weight: 90, Cost: CostFallThrough}}},
		{Weight: 100, Succs: []Succ{{To: 2, Weight: 100, Cost: CostFallThrough}}},
		{Weight: 100},
	}
	res := Infer(nodes)
	if res.Residual != 0 {
		t.Fatalf("residual %d", res.Residual)
	}
	checkConserved(t, nodes, res)
	if res.EdgeCounts[0][0] != 100 {
		t.Errorf("entry->a repaired to %d, want 100", res.EdgeCounts[0][0])
	}
	if res.NodeCounts[1] != 100 {
		t.Errorf("a cut to %d, want 100", res.NodeCounts[1])
	}
}

// TestDanglingBlockKeepsSamples: a block with no preds and no succs
// (orphaned by disassembly quirks) keeps its measured weight.
func TestDanglingBlockKeepsSamples(t *testing.T) {
	nodes := []Node{
		{Weight: 50, IsEntry: true, Succs: []Succ{{To: 1, Cost: CostFallThrough}}},
		{Weight: 50},
		{Weight: 7}, // dangling
	}
	res := Infer(nodes)
	checkConserved(t, nodes, res)
	if res.NodeCounts[2] != 7 {
		t.Errorf("dangling block count = %d, want 7", res.NodeCounts[2])
	}
}

// TestEmpty covers the degenerate inputs.
func TestEmpty(t *testing.T) {
	if res := Infer(nil); len(res.NodeCounts) != 0 {
		t.Fatal("non-empty result for empty input")
	}
	res := Infer([]Node{{Weight: 3, IsEntry: true}})
	if res.NodeCounts[0] != 3 {
		t.Fatalf("single node count %d, want 3", res.NodeCounts[0])
	}
}

// TestRandomCFGsConserve is the property test: pseudo-random CFGs with
// random sparse sample weights always infer to an exactly conserving
// assignment with zero residual.
func TestRandomCFGsConserve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		nodes := make([]Node, n)
		nodes[0].IsEntry = true
		for i := 0; i < n; i++ {
			// Sparse samples: many blocks unsampled, like real PC data.
			if rng.Intn(3) > 0 {
				nodes[i].Weight = uint64(rng.Intn(10000))
			}
			if i == n-1 {
				continue // keep at least one exit
			}
			succs := rng.Intn(3)
			seen := map[int]bool{}
			for k := 0; k < succs; k++ {
				to := 1 + rng.Intn(n-1)
				if seen[to] {
					continue
				}
				seen[to] = true
				cost := int64(CostTaken)
				if to <= i {
					cost = CostBackward
				} else if to == i+1 {
					cost = CostFallThrough
				}
				sc := Succ{To: to, Cost: cost}
				if rng.Intn(2) == 0 {
					sc.Weight = uint64(rng.Intn(5000)) // LBR-ish partial edges
				}
				nodes[i].Succs = append(nodes[i].Succs, sc)
			}
		}
		res := Infer(nodes)
		if res.Residual != 0 {
			t.Fatalf("trial %d: residual %d", trial, res.Residual)
		}
		checkConserved(t, nodes, res)
	}
}

// TestDeterministic: the same problem always yields the same assignment.
func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20
	nodes := make([]Node, n)
	nodes[0].IsEntry = true
	for i := 0; i < n-1; i++ {
		nodes[i].Weight = uint64(rng.Intn(1000))
		nodes[i].Succs = []Succ{{To: i + 1, Cost: CostFallThrough}}
		if j := rng.Intn(n); j != i+1 {
			nodes[i].Succs = append(nodes[i].Succs, Succ{To: j, Cost: CostTaken})
		}
	}
	first := Infer(nodes)
	for k := 0; k < 5; k++ {
		got := Infer(nodes)
		for i := range got.NodeCounts {
			if got.NodeCounts[i] != first.NodeCounts[i] {
				t.Fatalf("run %d: node %d diverged", k, i)
			}
			for e := range got.EdgeCounts[i] {
				if got.EdgeCounts[i][e] != first.EdgeCounts[i][e] {
					t.Fatalf("run %d: edge %d/%d diverged", k, i, e)
				}
			}
		}
	}
}

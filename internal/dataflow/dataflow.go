// Package dataflow provides the worklist solver behind gobolt's analyses
// (paper §4: "BOLT is also equipped with a dataflow-analysis framework").
// The frame-opts and shrink-wrapping passes use register liveness; the
// solver is generic over block graphs described by index functions.
package dataflow

import "gobolt/internal/isa"

// Liveness computes per-block live-in/live-out register sets with a
// backward worklist iteration.
//
//	n      — number of blocks
//	succs  — successor indices of block i (including exception edges)
//	use    — registers read before any write in block i
//	def    — registers written in block i
func Liveness(n int, succs func(int) []int, use, def func(int) isa.RegSet) (liveIn, liveOut []isa.RegSet) {
	liveIn = make([]isa.RegSet, n)
	liveOut = make([]isa.RegSet, n)
	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	// Precompute predecessor lists for efficient requeueing.
	preds := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, s := range succs(i) {
			if s >= 0 && s < n {
				preds[s] = append(preds[s], i)
			}
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		var out isa.RegSet
		for _, s := range succs(b) {
			if s >= 0 && s < n {
				out |= liveIn[s]
			}
		}
		in := use(b) | (out &^ def(b))
		if out == liveOut[b] && in == liveIn[b] {
			continue
		}
		liveOut[b] = out
		liveIn[b] = in
		for _, p := range preds[b] {
			if !inWork[p] {
				inWork[p] = true
				work = append(work, p)
			}
		}
	}
	return liveIn, liveOut
}

// UseDefOfInsts folds an instruction sequence into block-level use/def
// sets (use = read before written; def = written anywhere).
func UseDefOfInsts(uses, defs []isa.RegSet) (use, def isa.RegSet) {
	for i := range uses {
		use |= uses[i] &^ def
		def |= defs[i]
	}
	return use, def
}

// LiveAtEachInst walks a block backward from liveOut and returns the
// live-after set for every instruction.
func LiveAtEachInst(uses, defs []isa.RegSet, liveOut isa.RegSet) []isa.RegSet {
	n := len(uses)
	liveAfter := make([]isa.RegSet, n)
	cur := liveOut
	for i := n - 1; i >= 0; i-- {
		liveAfter[i] = cur
		cur = uses[i] | (cur &^ defs[i])
	}
	return liveAfter
}

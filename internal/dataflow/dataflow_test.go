package dataflow

import (
	"testing"

	"gobolt/internal/isa"
)

func TestLivenessStraightLine(t *testing.T) {
	// b0 -> b1; b0 defs RAX, b1 uses RAX.
	succs := func(i int) []int {
		if i == 0 {
			return []int{1}
		}
		return nil
	}
	use := func(i int) isa.RegSet {
		if i == 1 {
			return isa.RegMask(isa.RAX)
		}
		return 0
	}
	def := func(i int) isa.RegSet {
		if i == 0 {
			return isa.RegMask(isa.RAX)
		}
		return 0
	}
	liveIn, liveOut := Liveness(2, succs, use, def)
	if !liveOut[0].Has(isa.RAX) {
		t.Errorf("RAX must be live out of b0: %v", liveOut[0])
	}
	if liveIn[0].Has(isa.RAX) {
		t.Errorf("RAX must not be live into b0 (defined there): %v", liveIn[0])
	}
	if !liveIn[1].Has(isa.RAX) {
		t.Errorf("RAX must be live into b1: %v", liveIn[1])
	}
}

func TestLivenessLoop(t *testing.T) {
	// b0 -> b1 -> b2 -> b1 (loop), b1 -> b3. RBX used in b2, defined in b0.
	succs := func(i int) []int {
		switch i {
		case 0:
			return []int{1}
		case 1:
			return []int{2, 3}
		case 2:
			return []int{1}
		}
		return nil
	}
	use := func(i int) isa.RegSet {
		if i == 2 {
			return isa.RegMask(isa.RBX)
		}
		return 0
	}
	def := func(i int) isa.RegSet {
		if i == 0 {
			return isa.RegMask(isa.RBX)
		}
		return 0
	}
	liveIn, liveOut := Liveness(4, succs, use, def)
	// RBX must be live around the whole loop.
	for _, b := range []int{1, 2} {
		if !liveIn[b].Has(isa.RBX) {
			t.Errorf("RBX must be live into b%d", b)
		}
	}
	if !liveOut[0].Has(isa.RBX) {
		t.Errorf("RBX must be live out of b0")
	}
	if liveIn[3].Has(isa.RBX) {
		t.Errorf("RBX must be dead in the exit block")
	}
}

func TestLiveAtEachInst(t *testing.T) {
	// push r9 (uses r9); call (defs caller-saved); pop r9 (defs r9).
	push := isa.NewInst(isa.PUSH)
	push.R1 = isa.R9
	call := isa.NewInst(isa.CALL)
	pop := isa.NewInst(isa.POP)
	pop.R1 = isa.R9
	uses := []isa.RegSet{push.Uses(), call.Uses(), pop.Uses()}
	defs := []isa.RegSet{push.Defs(), call.Defs(), pop.Defs()}
	// R9 dead at block end.
	liveAfter := LiveAtEachInst(uses, defs, 0)
	if liveAfter[2].Has(isa.R9) {
		t.Errorf("R9 must be dead after pop")
	}
	// R9 live at block end -> live after pop.
	liveAfter = LiveAtEachInst(uses, defs, isa.RegMask(isa.R9))
	if !liveAfter[2].Has(isa.R9) {
		t.Errorf("R9 must be live after pop when live-out")
	}
}

func TestUseDefOfInsts(t *testing.T) {
	mov := isa.NewInst(isa.MOVrr) // rax = rbx
	mov.R1, mov.R2 = isa.RAX, isa.RBX
	add := isa.NewInst(isa.ADDrr) // rax += rax (uses rax after def: not upward-exposed)
	add.R1, add.R2 = isa.RAX, isa.RAX
	use, def := UseDefOfInsts(
		[]isa.RegSet{mov.Uses(), add.Uses()},
		[]isa.RegSet{mov.Defs(), add.Defs()},
	)
	if !use.Has(isa.RBX) || use.Has(isa.RAX) {
		t.Errorf("use set wrong: %v", use)
	}
	if !def.Has(isa.RAX) {
		t.Errorf("def set wrong: %v", def)
	}
}

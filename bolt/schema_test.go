package bolt_test

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"gobolt/bolt"
	"gobolt/internal/bincheck"
	"gobolt/internal/core"
	"gobolt/internal/obsv"
)

// jsonKeys returns the JSON object keys a struct marshals to: the json
// tag name when present, the Go field name otherwise, skipping "-".
func jsonKeys(t reflect.Type) []string {
	var keys []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := f.Name
		if tag, ok := f.Tag.Lookup("json"); ok {
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" {
				continue
			}
			if tagName != "" {
				name = tagName
			}
		}
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

type schemaDef struct {
	AdditionalProperties *bool                      `json:"additionalProperties"`
	Required             []string                   `json:"required"`
	Properties           map[string]json.RawMessage `json:"properties"`
}

func loadSchemaDefs(t *testing.T, path string) map[string]schemaDef {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read schema: %v", err)
	}
	var doc struct {
		Ref  string               `json:"$ref"`
		Defs map[string]schemaDef `json:"$defs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	if doc.Ref == "" || doc.Defs[strings.TrimPrefix(doc.Ref, "#/$defs/")].Properties == nil {
		t.Fatalf("schema root $ref %q does not resolve to a definition with properties", doc.Ref)
	}
	return doc.Defs
}

// checkSchemaDefs pins each named definition in a committed JSON Schema
// to the Go struct it documents: property keys must match the struct's
// JSON keys exactly, unknown fields must be rejected
// (additionalProperties: false), and every required key must exist.
func checkSchemaDefs(t *testing.T, defs map[string]schemaDef, types map[string]reflect.Type) {
	t.Helper()
	for name, typ := range types {
		def, ok := defs[name]
		if !ok {
			t.Errorf("schema is missing the %q definition", name)
			continue
		}
		if def.AdditionalProperties == nil || *def.AdditionalProperties {
			t.Errorf("schema def %q must set additionalProperties: false (the Go decoder is strict)", name)
		}
		var got []string
		for k := range def.Properties {
			got = append(got, k)
		}
		sort.Strings(got)
		if want := jsonKeys(typ); !reflect.DeepEqual(got, want) {
			t.Errorf("schema def %q properties drifted from %v:\n  schema: %v\n  struct: %v",
				name, typ, got, want)
		}
		for _, req := range def.Required {
			if _, ok := def.Properties[req]; !ok {
				t.Errorf("schema def %q requires %q but does not define it", name, req)
			}
		}
	}
	for name := range defs {
		if _, ok := types[name]; !ok {
			t.Errorf("schema def %q has no Go struct mapped in this test; extend the map", name)
		}
	}
}

// TestReportSchemaInSync keeps docs/report.schema.json honest: every
// definition mirrors the Go struct behind the run report exactly, so
// schema drift fails here instead of surprising downstream consumers.
func TestReportSchemaInSync(t *testing.T) {
	defs := loadSchemaDefs(t, "../docs/report.schema.json")
	checkSchemaDefs(t, defs, map[string]reflect.Type{
		"run_report": reflect.TypeOf(bolt.RunReport{}),
		"options":    reflect.TypeOf(core.Options{}),
		"functions":  reflect.TypeOf(bolt.RunFunctions{}),
		"sizes":      reflect.TypeOf(bolt.RunSizes{}),
		"phase":      reflect.TypeOf(bolt.RunPhase{}),
		"amdahl":     reflect.TypeOf(bolt.RunAmdahl{}),
		"occupancy":  reflect.TypeOf(obsv.PhaseStats{}),
		"task_stat":  reflect.TypeOf(obsv.TaskStat{}),
		"metrics":    reflect.TypeOf(obsv.Snapshot{}),
		"histogram":  reflect.TypeOf(obsv.HistogramSnapshot{}),
		"obs":        reflect.TypeOf(obsv.Obs{}),
		"profile":    reflect.TypeOf(bolt.RunProfile{}),
		"dyno":       reflect.TypeOf(bolt.RunDyno{}),
		"dyno_stats": reflect.TypeOf(core.DynoStats{}),
		"verify":     reflect.TypeOf(bincheck.Result{}),
		"finding":    reflect.TypeOf(bincheck.Finding{}),
	})
}

package bolt_test

import (
	"context"
	"fmt"
	"log"

	"gobolt/bolt"
	"gobolt/internal/cc"
	"gobolt/internal/ld"
	"gobolt/internal/perf"
	"gobolt/internal/vm"
	"gobolt/internal/workload"
)

// ExampleSession shows the staged API end to end: build a synthetic
// binary with the bundled toolchain, profile it under the VM, optimize
// it through a Session, and verify the output computes the same result.
func ExampleSession() {
	cx := context.Background()

	// Build a deterministic toy binary (relocations kept, as the
	// paper's relocations mode requires).
	objs, err := cc.Compile(workload.Generate(workload.Tiny()), cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	linked, err := ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
	if err != nil {
		log.Fatal(err)
	}

	// Profile it with LBR-style sampling.
	fd, _, err := perf.RecordFile(linked.File, perf.DefaultMode(), 0)
	if err != nil {
		log.Fatal(err)
	}

	// The staged pipeline: open → profile → optimize → output.
	sess, err := bolt.OpenELF(linked.File)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		log.Fatal(err)
	}

	// The optimized binary must compute the same checksum.
	before, _ := vm.New(linked.File)
	before.Run(0)
	after, _ := vm.New(sess.Output())
	after.Run(0)

	fmt.Println("moved functions:", rep.MovedFuncs > 0)
	fmt.Println("identical result:", before.Result() == after.Result())
	// Output:
	// moved functions: true
	// identical result: true
}

// ExampleMergeShards merges profile shards from parallel production
// runs into one deterministic profile, the way `perf2bolt -merge` does.
func ExampleMergeShards() {
	objs, err := cc.Compile(workload.Generate(workload.Tiny()), cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	linked, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		log.Fatal(err)
	}
	shard1, _, err := perf.RecordFile(linked.File, perf.DefaultMode(), 0)
	if err != nil {
		log.Fatal(err)
	}
	shard2, _, err := perf.RecordFile(linked.File, perf.DefaultMode(), 0)
	if err != nil {
		log.Fatal(err)
	}

	merged, err := bolt.MergeShards(bolt.Fdata(shard1), bolt.Fdata(shard2)).Load(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counts add up:", merged.TotalBranchCount() == shard1.TotalBranchCount()+shard2.TotalBranchCount())
	// Output:
	// counts add up: true
}

package bolt

import (
	"fmt"

	"gobolt/internal/bincheck"
)

// VerifyOutput statically verifies the optimized binary with the
// independent checker in internal/bincheck: the output image is
// serialized to bytes and re-opened from scratch — re-parsed,
// re-disassembled, its CFGs rebuilt — so the verification shares none
// of the emitter's in-memory state. The result is returned, recorded
// on the session's Report, and embedded in the RunReport (`verify`
// block, schema v2).
//
// Requires a successful Optimize; repeatable (each call re-verifies
// the serialized bytes). A result with error-severity findings is not
// itself an error — gates decide; see Result.Ok.
func (s *Session) VerifyOutput() (*bincheck.Result, error) {
	if s.broken {
		return nil, fmt.Errorf("bolt: VerifyOutput on a broken session")
	}
	if s.res == nil {
		return nil, fmt.Errorf("bolt: VerifyOutput before Optimize")
	}
	data, err := s.res.File.Bytes()
	if err != nil {
		return nil, fmt.Errorf("bolt: VerifyOutput: serialize: %w", err)
	}
	res, err := bincheck.Check(data)
	if err != nil {
		return nil, fmt.Errorf("bolt: VerifyOutput: %w", err)
	}
	if s.rep != nil {
		s.rep.Verify = res
	}
	return res, nil
}

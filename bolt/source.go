package bolt

import (
	"context"
	"fmt"
	"os"

	"gobolt/internal/bat"
	"gobolt/internal/elfx"
	"gobolt/internal/par"
	"gobolt/internal/profile"
)

// ProfileSource abstracts where a profile comes from, so the pipeline
// never cares: a file, an in-memory Fdata, merged shards, or samples
// collected on an already-optimized binary that need BAT translation.
// Sources compose — SampledOn wraps any source, MergeShards merges any
// mix of sources.
type ProfileSource interface {
	// Describe returns a short human-readable origin for reports and
	// error messages ("perf.fdata", "merge of 8 shards", ...).
	Describe() string
	// Load produces the profile. It honors cancellation of cx and may be
	// called at most once per Session.
	Load(cx context.Context) (*profile.Fdata, error)
}

// fileSource reads an fdata file from disk.
type fileSource struct{ path string }

// FdataFile reads an fdata profile from a file path.
func FdataFile(path string) ProfileSource { return fileSource{path} }

func (s fileSource) Describe() string { return s.path }

func (s fileSource) Load(cx context.Context) (*profile.Fdata, error) {
	if err := cx.Err(); err != nil {
		return nil, err
	}
	r, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return profile.Parse(cx, r)
}

// memSource hands over an in-memory profile.
type memSource struct{ fd *profile.Fdata }

// Fdata wraps an in-memory profile — the natural source for toolchain
// code that just recorded one (perf.RecordFile) or synthesized one.
func Fdata(fd *profile.Fdata) ProfileSource { return memSource{fd} }

func (s memSource) Describe() string { return "<memory>" }

func (s memSource) Load(cx context.Context) (*profile.Fdata, error) {
	if err := cx.Err(); err != nil {
		return nil, err
	}
	if s.fd == nil {
		return nil, fmt.Errorf("nil profile")
	}
	return s.fd, nil
}

// MergeSource aggregates N profile shards from parallel runs into one
// deterministic profile (BOLT's merge-fdata). Shards load concurrently
// over the shared worker pool.
type MergeSource struct {
	// Jobs bounds the shard-parsing pool (0 = GOMAXPROCS).
	Jobs    int
	sources []ProfileSource
}

// MergeShards merges any mix of profile sources. LoadProfile uses it
// implicitly when given more than one source.
func MergeShards(sources ...ProfileSource) *MergeSource {
	return &MergeSource{sources: sources}
}

// FdataFiles builds one file source per path — the common MergeShards
// input for `perf2bolt -merge shard*.fdata`.
func FdataFiles(paths ...string) []ProfileSource {
	out := make([]ProfileSource, len(paths))
	for i, p := range paths {
		out[i] = FdataFile(p)
	}
	return out
}

func (s *MergeSource) Describe() string {
	if len(s.sources) == 1 {
		return s.sources[0].Describe()
	}
	return fmt.Sprintf("merge of %d shards", len(s.sources))
}

func (s *MergeSource) Load(cx context.Context) (*profile.Fdata, error) {
	shards := make([]*profile.Fdata, len(s.sources))
	if _, err := par.For(cx, len(s.sources), par.Jobs(s.Jobs, len(s.sources)), func(_, i int) error {
		fd, err := s.sources[i].Load(cx)
		if err != nil {
			return fmt.Errorf("%s: %w", s.sources[i].Describe(), err)
		}
		shards[i] = fd
		return nil
	}); err != nil {
		return nil, err
	}
	return profile.Merge(shards)
}

// SampledResult reports what SampledOn did to the profile, for tools
// that surface translation statistics (perf2bolt).
type SampledResult struct {
	// Translated is true when the binary carried a .bolt.bat section and
	// the profile was rewritten into input-binary coordinates.
	Translated bool
	// BATFuncs/BATRanges describe the translation table when Translated.
	BATFuncs, BATRanges int
	// Stats are the per-record translation outcomes when Translated.
	Stats bat.TranslateStats
	// Branches/Samples count the records kept; Dropped counts records
	// discarded by plain-mode symbol validation (0 when Translated —
	// translation accounts drops in Stats.DroppedCount instead).
	Branches, Samples, Dropped int
}

// SampledSource re-symbolizes a profile against the binary it was
// sampled on. If that binary carries a .bolt.bat section (it is a gobolt
// output), the profile is translated back to input-binary coordinates —
// the §7.3 continuous-profiling step, auto-detected. Otherwise every
// record is validated against the binary's symbol table and records that
// no longer resolve are dropped (classic perf2bolt).
type SampledSource struct {
	// Translate controls the .bolt.bat auto-detection (default true);
	// clear it to force plain validation even on an optimized binary,
	// e.g. to bypass a corrupt table.
	Translate bool
	// Result is populated by Load.
	Result SampledResult

	src  ProfileSource
	path string     // binary path ("" when file was handed over directly)
	file *elfx.File // sampled binary, lazily read from path
}

// SampledOn declares that src's profile was sampled while running the
// binary at path. Load reads the binary, auto-detects .bolt.bat, and
// translates or validates accordingly.
func SampledOn(src ProfileSource, path string) *SampledSource {
	return &SampledSource{Translate: true, src: src, path: path}
}

// SampledOnELF is SampledOn for an already-loaded binary image.
func SampledOnELF(src ProfileSource, f *elfx.File) *SampledSource {
	return &SampledSource{Translate: true, src: src, file: f}
}

func (s *SampledSource) Describe() string {
	on := s.path
	if on == "" {
		on = "<memory binary>"
	}
	return fmt.Sprintf("%s sampled on %s", s.src.Describe(), on)
}

func (s *SampledSource) Load(cx context.Context) (*profile.Fdata, error) {
	fd, err := s.src.Load(cx)
	if err != nil {
		return nil, err
	}
	if s.file == nil {
		f, err := elfx.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		s.file = f
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	if s.Translate {
		table, err := bat.FromFile(s.file)
		if err != nil {
			return nil, err
		}
		if table != nil {
			kept, st := bat.TranslateProfile(fd, s.file, table)
			s.Result = SampledResult{
				Translated: true,
				BATFuncs:   len(table.Funcs),
				BATRanges:  len(table.Ranges),
				Stats:      st,
				Branches:   len(kept.Branches),
				Samples:    len(kept.Samples),
			}
			return kept, nil
		}
	}
	kept, dropped := validateProfile(fd, s.file)
	s.Result = SampledResult{
		Branches: len(kept.Branches),
		Samples:  len(kept.Samples),
		Dropped:  dropped,
	}
	return kept, nil
}

// validateProfile drops records whose locations no longer resolve
// against the binary's symbol table.
func validateProfile(fd *profile.Fdata, f *elfx.File) (*profile.Fdata, int) {
	resolves := func(l profile.Loc) bool {
		sym, ok := f.SymbolByName(l.Sym)
		return ok && l.Off < sym.Size
	}
	kept := &profile.Fdata{LBR: fd.LBR, Event: fd.Event, Shapes: fd.Shapes}
	dropped := 0
	for _, b := range fd.Branches {
		if resolves(b.From) && resolves(b.To) {
			kept.Branches = append(kept.Branches, b)
		} else {
			dropped++
		}
	}
	for _, sm := range fd.Samples {
		if resolves(sm.At) {
			kept.Samples = append(kept.Samples, sm)
		} else {
			dropped++
		}
	}
	return kept, dropped
}

// SaveProfile writes a profile to path in fdata format — the tail end of
// every profile-tooling flow (perf2bolt, vmrun -record).
func SaveProfile(fd *profile.Fdata, path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fd.Write(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

package bolt

import (
	"gobolt/internal/core"
	"gobolt/internal/obsv"
)

// Option configures a Session at open time. The base configuration is
// always core.DefaultOptions() — the paper's evaluation setup — so a
// zero-option session runs the full pipeline; Options only deviate from
// it. The historical `core.Options{}` "everything silently off" zero
// value cannot be expressed through this API.
type Option func(*core.Options)

// WithOptions replaces the whole option set — the escape hatch for CLI
// adapters that materialize a core.Options from flags. The zero value is
// normalized to the defaults (see core.Options.Normalized).
func WithOptions(o core.Options) Option {
	return func(dst *core.Options) { *dst = o.Normalized() }
}

// WithJobs bounds the worker pools of every parallel phase — loader
// disassembly+CFG, function passes, code emission (0 = GOMAXPROCS,
// 1 = serial). Output is bit-identical for every value.
func WithJobs(n int) Option {
	return func(o *core.Options) { o.Jobs = n }
}

// WithDynoStats collects the before/after dynamic instruction statistics
// into Report.DynoBefore/DynoAfter.
func WithDynoStats(on bool) Option {
	return func(o *core.Options) { o.DynoStats = on }
}

// WithLite skips functions with no profile samples entirely.
func WithLite(on bool) Option {
	return func(o *core.Options) { o.Lite = on }
}

// WithBAT controls emission of the .bolt.bat address-translation section
// (continuous profiling, §7.3). Default on.
func WithBAT(on bool) Option {
	return func(o *core.Options) { o.EnableBAT = on }
}

// WithStaleMatching controls CFG-shape recovery of stale profile records
// (arXiv:2401.17168). Default on.
func WithStaleMatching(on bool) Option {
	return func(o *core.Options) { o.StaleMatching = on }
}

// WithInferFlow selects the minimum-cost-flow profile-inference mode
// (the production replacement for the paper's §5.1 "non-ideal
// algorithm"): core.InferAuto (default) solves MCF for non-LBR sample
// profiles, core.InferAlways also repairs LBR/stale/BAT-translated
// profiles after classic flow repair, core.InferNever restores the
// proportional estimator.
func WithInferFlow(mode core.InferMode) Option {
	return func(o *core.Options) { o.InferFlow = mode }
}

// WithTracer attaches an obsv span tracer to the session: every
// pipeline phase and worker-pool task records a span into tr, the
// per-phase occupancy stats land in Report.Occupancy, and
// tr.WriteChromeTrace exports the Perfetto-loadable timeline
// (gobolt -trace-out). nil (the default) disables tracing at zero
// hot-path cost.
func WithTracer(tr *obsv.Tracer) Option {
	return func(o *core.Options) { o.Trace = tr }
}

// WithSplitFunctions sets the hot/cold splitting level (0 = off).
func WithSplitFunctions(level int) Option {
	return func(o *core.Options) { o.SplitFunctions = level }
}

package bolt_test

import (
	"bytes"
	"fmt"
	"reflect"
	"slices"
	"sort"
	"strings"
	"testing"

	"gobolt/bolt"
	"gobolt/internal/obsv"
)

// traceShape reduces a span set to its deterministic structure: the
// phase-name sequence in execution order, and per phase the sorted
// multiset of task names. Which worker ran which task and how the batch
// intervals split are scheduling-dependent and deliberately excluded.
type traceShape struct {
	phases    []string
	taskNames map[string][]string
}

func shapeOf(spans []obsv.Span) traceShape {
	sh := traceShape{taskNames: map[string][]string{}}
	for _, s := range spans {
		switch s.Kind {
		case obsv.KindPhase:
			sh.phases = append(sh.phases, s.Name)
		case obsv.KindTask:
			sh.taskNames[s.Phase] = append(sh.taskNames[s.Phase], s.Name)
		}
	}
	for _, names := range sh.taskNames {
		sort.Strings(names)
	}
	return sh
}

// TestTraceDeterministicAcrossJobs is the tracing counterpart of the
// byte-identical-output contract: the recorded span timeline has the
// same structure for every worker count — identical phase-name order,
// identical per-phase task-name multisets — while worker assignment and
// batch splits are free. The export must also validate as Chrome
// trace-event JSON and carry at least one span per pipeline stage.
func TestTraceDeterministicAcrossJobs(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)

	shapes := map[int]traceShape{}
	for _, jobs := range []int{1, 2, 4} {
		tr := obsv.New()
		optimizeViaSession(t, f, fd, jobs, bolt.WithTracer(tr))
		spans := tr.Spans()
		shapes[jobs] = shapeOf(spans)

		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("jobs=%d: write trace: %v", jobs, err)
		}
		if err := obsv.ValidateChromeTrace(buf.Bytes()); err != nil {
			t.Errorf("jobs=%d: exported trace invalid: %v", jobs, err)
		}
	}

	base := shapes[1]
	for _, stage := range []string{"load:", "profile:apply", "reorder", "emit:"} {
		if !slices.ContainsFunc(base.phases, func(name string) bool {
			return strings.Contains(name, stage)
		}) {
			t.Errorf("no phase span matching %q in %v", stage, base.phases)
		}
	}
	for _, jobs := range []int{2, 4} {
		sh := shapes[jobs]
		if !slices.Equal(base.phases, sh.phases) {
			t.Errorf("jobs=%d: phase sequence diverged from jobs=1:\n  %v\nvs\n  %v",
				jobs, base.phases, sh.phases)
		}
		if !reflect.DeepEqual(base.taskNames, sh.taskNames) {
			for phase, names := range base.taskNames {
				if !slices.Equal(names, sh.taskNames[phase]) {
					t.Errorf("jobs=%d: phase %q task multiset diverged (%d vs %d tasks)",
						jobs, phase, len(names), len(sh.taskNames[phase]))
				}
			}
		}
	}
}

// TestOccupancyConsistentWithTimings pins the derived occupancy stats to
// the -time-passes instrumentation they sit next to: a pooled phase's
// occupancy wall is exactly the wall the PassTiming rows recorded (the
// phase span and the timing row are fed from the same measurement), and
// busy time never exceeds wall × jobs.
func TestOccupancyConsistentWithTimings(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	tr := obsv.New()
	_, rep, _ := optimizeViaSession(t, f, fd, 2, bolt.WithTracer(tr))

	occ := rep.OccupancyStats()
	if len(occ) == 0 {
		t.Fatal("traced run derived no occupancy stats")
	}

	// Occupancy folds repeated phase names (icf, peepholes run twice), so
	// compare against the summed timing walls per name.
	wallByName := map[string]int64{}
	for _, pt := range rep.Timings() {
		wallByName[pt.Name] += pt.Wall.Nanoseconds()
	}
	matched := 0
	for _, ps := range occ {
		if ps.Tasks == 0 {
			t.Errorf("occupancy row %q has no tasks", ps.Phase)
		}
		if ps.BusyNS > ps.WallNS*int64(ps.Jobs) {
			t.Errorf("occupancy row %q: busy %dns exceeds wall %dns x %d jobs",
				ps.Phase, ps.BusyNS, ps.WallNS, ps.Jobs)
		}
		if ps.Utilization < 0 || ps.Utilization > 1+1e-9 {
			t.Errorf("occupancy row %q: utilization %v out of [0,1]", ps.Phase, ps.Utilization)
		}
		want, ok := wallByName[ps.Phase]
		if !ok {
			continue // trace-only phases (profile:load) have no timing row
		}
		matched++
		if ps.WallNS != want {
			t.Errorf("occupancy row %q wall %dns != -time-passes wall %dns",
				ps.Phase, ps.WallNS, want)
		}
	}
	if matched < 3 {
		t.Errorf("only %d occupancy rows matched a timing row; instrumentation drifted", matched)
	}
}

// TestRunReportRoundTrip feeds Report.WriteJSON back through the strict
// decoder: the document must parse with unknown fields disallowed,
// validate, and reproduce the in-memory RunReport exactly. It also pins
// the strictness properties themselves (unknown field, trailing data,
// and version mismatch all fail).
func TestRunReportRoundTrip(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	_, rep, _ := optimizeViaSession(t, f, fd, 2, bolt.WithTracer(obsv.New()), bolt.WithDynoStats(true))

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := bolt.ValidateRunReport(buf.Bytes()); err != nil {
		t.Fatalf("ValidateRunReport: %v", err)
	}
	got, err := bolt.ParseRunReport(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseRunReport: %v", err)
	}
	if want := rep.RunReport(); !reflect.DeepEqual(got, want) {
		t.Errorf("run report did not round-trip:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Profile == nil || got.Profile.TotalCount == 0 {
		t.Error("round-tripped report lost the profile provenance")
	}
	if got.Metrics == nil || len(got.Metrics.Counters) == 0 {
		t.Error("round-tripped report lost the metrics snapshot")
	}
	if got.Dyno == nil {
		t.Error("round-tripped report lost the dyno stats")
	}
	if len(got.Occupancy) == 0 {
		t.Error("round-tripped report lost the occupancy stats")
	}

	// Strictness: unknown fields, trailing data, version drift.
	unknown := bytes.Replace(buf.Bytes(), []byte(`"schema_version"`), []byte(`"bogus_field": 1, "schema_version"`), 1)
	if _, err := bolt.ParseRunReport(unknown); err == nil {
		t.Error("ParseRunReport accepted an unknown field")
	}
	trailing := append(append([]byte{}, buf.Bytes()...), []byte("{}")...)
	if _, err := bolt.ParseRunReport(trailing); err == nil {
		t.Error("ParseRunReport accepted trailing data")
	}
	verTag := fmt.Sprintf(`"schema_version": %d`, bolt.ReportSchemaVersion)
	if !bytes.Contains(buf.Bytes(), []byte(verTag)) {
		t.Fatalf("report JSON does not carry %s", verTag)
	}
	wrongVer := bytes.Replace(buf.Bytes(), []byte(verTag), []byte(`"schema_version": 999`), 1)
	if _, err := bolt.ParseRunReport(wrongVer); err == nil {
		t.Error("ParseRunReport accepted a mismatched schema version")
	}
}

package bolt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gobolt/internal/bincheck"
	"gobolt/internal/core"
	"gobolt/internal/obsv"
)

// ReportSchemaVersion is the version stamped into every RunReport. It
// increments whenever a field is removed, changes meaning, or is added:
// ParseRunReport is strict (unknown fields are errors), so even
// additive changes are visible to consumers. v2 added the `verify`
// block (independent output verification, internal/bincheck).
const ReportSchemaVersion = 2

// RunReport is the machine-readable form of a Report: a versioned,
// stable JSON schema for dashboards, CI gates, and experiment harnesses
// (`gobolt -report-json`, boltbench artifacts). All durations are
// nanoseconds; all sizes are bytes. The committed JSON Schema lives in
// docs/report.schema.json.
type RunReport struct {
	SchemaVersion int `json:"schema_version"`

	// Input identity: the path/name the session opened plus the sha256
	// (hex) and byte size of the serialized input image.
	Input       string `json:"input"`
	InputSHA256 string `json:"input_sha256,omitempty"`
	InputSize   int    `json:"input_size,omitempty"`

	// Options is the resolved option set the run used (core.Options
	// field names; the tracer handle is operational state and excluded).
	Options core.Options `json:"options"`

	// Functions is the rewrite accounting; Sizes the layout sizes.
	Functions RunFunctions `json:"functions"`
	Sizes     RunSizes     `json:"sizes"`

	// Phases lists every instrumented pipeline phase in execution order
	// (load → passes → emit); Amdahl is the serial/parallel fold of the
	// same list.
	Phases []RunPhase `json:"phases"`
	Amdahl RunAmdahl  `json:"amdahl"`

	// Occupancy holds per-phase worker-pool statistics derived from the
	// span trace; present only when the run traced (WithTracer).
	Occupancy []obsv.PhaseStats `json:"occupancy,omitempty"`

	// Metrics is the typed registry snapshot: every pipeline counter,
	// the flow-accuracy gauges, and the per-function quality histograms
	// (flow-accuracy and stale-match-quality distributions).
	Metrics *obsv.Snapshot `json:"metrics,omitempty"`

	// Profile describes the sample data that drove the run; absent for
	// profile-less runs.
	Profile *RunProfile `json:"profile,omitempty"`

	// Dyno holds the before/after dynamic instruction stats; present
	// only when the session ran WithDynoStats.
	Dyno *RunDyno `json:"dyno,omitempty"`

	// Verify holds the independent static verification of the output
	// binary (rule-keyed findings; see internal/bincheck); present only
	// when the session ran VerifyOutput.
	Verify *bincheck.Result `json:"verify,omitempty"`
}

// RunFunctions is the rewrite's function accounting.
type RunFunctions struct {
	Moved   int `json:"moved"`
	Skipped int `json:"skipped"`
	Folded  int `json:"folded"`
	Split   int `json:"split"`
	Simple  int `json:"simple"`
}

// RunSizes holds the emitted section sizes versus the original .text.
type RunSizes struct {
	HotText  uint64 `json:"hot_text"`
	ColdText uint64 `json:"cold_text"`
	OrigText uint64 `json:"orig_text"`
}

// RunPhase is one instrumented pipeline phase.
type RunPhase struct {
	Name     string `json:"name"`
	Group    string `json:"group"` // "load", "pass", or "emit"
	WallNS   int64  `json:"wall_ns"`
	Funcs    int    `json:"funcs,omitempty"`
	Parallel bool   `json:"parallel,omitempty"`
	Jobs     int    `json:"jobs,omitempty"`
}

// RunAmdahl is the serial/parallel wall-clock split of the pipeline.
// MaxUsefulJobs is omitted when unbounded (no serial wall measured:
// core reports +Inf, which JSON cannot carry).
type RunAmdahl struct {
	TotalNS        int64   `json:"total_ns"`
	ParallelWallNS int64   `json:"parallel_wall_ns"`
	SerialWallNS   int64   `json:"serial_wall_ns"`
	SerialFraction float64 `json:"serial_fraction"`
	MaxUsefulJobs  float64 `json:"max_useful_jobs,omitempty"`
}

// RunProfile is the profile provenance plus the flow-inference result.
type RunProfile struct {
	Source        string  `json:"source"`
	Branches      int     `json:"branches"`
	Samples       int     `json:"samples"`
	TotalCount    uint64  `json:"total_count"`
	FlowAccBefore float64 `json:"flow_acc_before"`
	FlowAccAfter  float64 `json:"flow_acc_after"`
	InferredFuncs int     `json:"inferred_funcs"`
}

// RunDyno pairs the before/after dynamic instruction statistics.
type RunDyno struct {
	Before core.DynoStats `json:"before"`
	After  core.DynoStats `json:"after"`
}

// RunReport converts the report into its machine-readable form.
func (r *Report) RunReport() *RunReport {
	rr := &RunReport{
		SchemaVersion: ReportSchemaVersion,
		Input:         r.Input,
		InputSHA256:   r.InputSHA256,
		InputSize:     r.InputSize,
		Options:       r.Options,
		Functions: RunFunctions{
			Moved:   r.MovedFuncs,
			Skipped: r.SkippedFuncs,
			Folded:  r.FoldedFuncs,
			Split:   r.SplitFuncs,
			Simple:  r.SimpleFuncs,
		},
		Sizes: RunSizes{
			HotText:  r.HotTextSize,
			ColdText: r.ColdTextSize,
			OrigText: r.OrigTextSize,
		},
		Occupancy: r.OccupancyStats(),
		Metrics:   r.Metrics,
	}
	// The tracer handle is operational state, not run description; drop
	// it so the in-memory RunReport round-trips through JSON exactly.
	rr.Options.Trace = nil
	appendGroup := func(group string, timings []core.PassTiming) {
		for _, t := range timings {
			rr.Phases = append(rr.Phases, RunPhase{
				Name:     t.Name,
				Group:    group,
				WallNS:   t.Wall.Nanoseconds(),
				Funcs:    t.Funcs,
				Parallel: t.Parallel,
				Jobs:     t.Jobs,
			})
		}
	}
	appendGroup("load", r.LoadTimings)
	appendGroup("pass", r.PassTimings)
	appendGroup("emit", r.EmitTimings)
	am := core.Amdahl(r.Timings())
	rr.Amdahl = RunAmdahl{
		TotalNS:        am.Total.Nanoseconds(),
		ParallelWallNS: am.ParallelWall.Nanoseconds(),
		SerialWallNS:   am.SerialWall.Nanoseconds(),
		SerialFraction: am.SerialFraction,
	}
	if !math.IsInf(am.MaxUsefulJobs, 1) {
		rr.Amdahl.MaxUsefulJobs = am.MaxUsefulJobs
	}
	if r.ProfileSource != "" {
		rr.Profile = &RunProfile{
			Source:        r.ProfileSource,
			Branches:      r.ProfileBranches,
			Samples:       r.ProfileSamples,
			TotalCount:    r.ProfileTotalCount,
			FlowAccBefore: r.FlowAccBefore,
			FlowAccAfter:  r.FlowAccAfter,
			InferredFuncs: r.InferredFuncs,
		}
	}
	if r.HasDynoStats {
		rr.Dyno = &RunDyno{Before: r.DynoBefore, After: r.DynoAfter}
	}
	rr.Verify = r.Verify
	return rr
}

// WriteJSON writes the versioned machine-readable run report (indented,
// trailing newline) — the payload behind `gobolt -report-json`.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.RunReport())
}

// ParseRunReport decodes a run report strictly: unknown fields anywhere
// in the document are errors (schema drift fails loudly instead of
// silently dropping data), as are version mismatches and trailing
// garbage.
func ParseRunReport(data []byte) (*RunReport, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rr RunReport
	if err := dec.Decode(&rr); err != nil {
		return nil, fmt.Errorf("bolt: parse run report: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("bolt: parse run report: trailing data after document")
	}
	if rr.SchemaVersion != ReportSchemaVersion {
		return nil, fmt.Errorf("bolt: run report schema_version %d, want %d", rr.SchemaVersion, ReportSchemaVersion)
	}
	return &rr, nil
}

// ValidateRunReport checks that data is a well-formed run report:
// strictly parseable, current schema version, and structurally sane
// (non-empty input, at least one phase, non-negative walls, occupancy
// utilization within [0,1]).
func ValidateRunReport(data []byte) error {
	rr, err := ParseRunReport(data)
	if err != nil {
		return err
	}
	if rr.Input == "" {
		return fmt.Errorf("bolt: run report: empty input")
	}
	if len(rr.Phases) == 0 {
		return fmt.Errorf("bolt: run report: no phases")
	}
	for _, p := range rr.Phases {
		if p.Name == "" {
			return fmt.Errorf("bolt: run report: phase with empty name")
		}
		if p.WallNS < 0 {
			return fmt.Errorf("bolt: run report: phase %q has negative wall", p.Name)
		}
		switch p.Group {
		case "load", "pass", "emit":
		default:
			return fmt.Errorf("bolt: run report: phase %q has unknown group %q", p.Name, p.Group)
		}
	}
	if rr.Amdahl.TotalNS < 0 || rr.Amdahl.SerialFraction < 0 || rr.Amdahl.SerialFraction > 1 {
		return fmt.Errorf("bolt: run report: implausible amdahl summary %+v", rr.Amdahl)
	}
	for _, o := range rr.Occupancy {
		if o.Utilization < 0 || o.Utilization > 1+1e-9 {
			return fmt.Errorf("bolt: run report: occupancy %q utilization %v out of range", o.Phase, o.Utilization)
		}
	}
	if v := rr.Verify; v != nil {
		errs, warns := 0, 0
		for _, f := range v.Findings {
			if f.Rule == "" {
				return fmt.Errorf("bolt: run report: verify finding with empty rule")
			}
			switch f.Severity {
			case bincheck.SeverityError:
				errs++
			case bincheck.SeverityWarning:
				warns++
			default:
				return fmt.Errorf("bolt: run report: verify finding with unknown severity %q", f.Severity)
			}
		}
		if errs != v.Errors || warns != v.Warnings {
			return fmt.Errorf("bolt: run report: verify severity tallies (%d/%d) disagree with findings (%d/%d)",
				v.Errors, v.Warnings, errs, warns)
		}
	}
	return nil
}

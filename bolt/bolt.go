// Package bolt is the public library API for the gobolt post-link
// optimizer: the one way to drive the paper's Figure 3 pipeline (read
// profile → disassemble/CFG → optimize → rewrite) from Go code. The
// command-line tools (cmd/gobolt, cmd/perf2bolt, cmd/vmrun), every
// example, and the experiment harness are thin adapters over this
// package.
//
// # Stages
//
// A Session moves through four stages, strictly in order:
//
//	Open / OpenReader / OpenELF   read the input ELF executable
//	LoadProfile(cx, sources...)   attach sample data (optional, one-shot)
//	Optimize(cx)                  run the Table 1 pipeline + emission (one-shot)
//	WriteFile / WriteTo           serialize the optimized binary (repeatable)
//
// Analyze(cx) is an optional intermediate stage that builds the CFGs and
// applies the profile without optimizing — enough for the report-only
// entry points (DynoStats, BadLayoutReport, PrintCFG, Shapes). Optimize
// calls it implicitly. Analyze is idempotent; LoadProfile and Optimize
// are one-shot: calling LoadProfile twice, after Analyze, or Optimize
// twice is an error rather than a silent re-run.
//
// Every stage taking a context.Context honors cancellation promptly: the
// parallel phases (loader disassembly+CFG, function passes, code
// emission) stop claiming work as soon as the context is done and the
// stage returns the context's error.
//
// # Profile sources
//
// Where the profile comes from is orthogonal to the pipeline: a
// ProfileSource can be an fdata file (FdataFile), an in-memory
// *profile.Fdata (Fdata), the merge of N shards from parallel runs
// (MergeShards), or a profile sampled on an already-BOLTed binary that
// must be translated back to input coordinates through its .bolt.bat
// section (SampledOn, which auto-detects the table). Passing several
// sources to LoadProfile merges them.
//
// Library code never calls os.Exit and never prints; all failures are
// returned errors and all results live in the Report.
package bolt

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/passes"
	"gobolt/internal/profile"
)

// Session is one run of the optimizer over one input binary. It is not
// safe for concurrent use; the parallelism knob is Options.Jobs, not
// concurrent sessions over the same Session value.
type Session struct {
	input     string // path or descriptive name, for reports
	inputSHA  string // sha256 of the serialized input image
	inputSize int
	file      *elfx.File
	opts      core.Options

	fd          *profile.Fdata
	profileDesc string

	bctx *core.BinaryContext
	res  *core.RewriteResult
	rep  *Report

	profiled  bool
	analyzed  bool
	optimized bool
	// broken marks a session whose pipeline failed (or was cancelled)
	// mid-flight: the CFGs may be partially transformed, so re-running
	// would not reproduce a clean run.
	broken bool
}

// Open reads the input executable from a file path.
func Open(path string, opts ...Option) (*Session, error) {
	f, err := elfx.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bolt: open %s: %w", path, err)
	}
	return newSession(path, f, opts), nil
}

// OpenReader reads the input executable from a stream (for example a
// pipe or an in-memory buffer).
func OpenReader(r io.Reader, opts ...Option) (*Session, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bolt: read input: %w", err)
	}
	f, err := elfx.Read(data)
	if err != nil {
		return nil, fmt.Errorf("bolt: parse input: %w", err)
	}
	return newSession("<reader>", f, opts), nil
}

// OpenELF wraps an already-loaded ELF image — the entry point for
// toolchain code that holds an *elfx.File (a linker result, a previous
// session's output) and wants to optimize it without a serialization
// round trip. The file is used in place and must not be mutated by the
// caller while the session is live.
func OpenELF(f *elfx.File, opts ...Option) (*Session, error) {
	if f == nil {
		return nil, fmt.Errorf("bolt: OpenELF: nil file")
	}
	return newSession("<memory>", f, opts), nil
}

func newSession(input string, f *elfx.File, opts []Option) *Session {
	o := core.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	s := &Session{input: input, file: f, opts: o.Normalized()}
	// Fingerprint the input image now, before any stage mutates the
	// file in place; Report.InputSHA256 identifies the exact binary a
	// run report describes.
	if data, err := f.Bytes(); err == nil {
		sum := sha256.Sum256(data)
		s.inputSHA, s.inputSize = hex.EncodeToString(sum[:]), len(data)
	}
	return s
}

// Input returns the ELF image the session was opened on.
func (s *Session) Input() *elfx.File { return s.file }

// Options returns the resolved option set (defaults plus the Option
// values passed at open time).
func (s *Session) Options() core.Options { return s.opts }

// LoadProfile loads and attaches sample data. It is one-shot and must
// run before Analyze/Optimize; several sources are merged as shards
// (profile.Merge semantics). With no sources it is a no-op, so optional
// "-data" style plumbing does not need a branch at the call site.
func (s *Session) LoadProfile(cx context.Context, sources ...ProfileSource) error {
	if len(sources) == 0 {
		return nil
	}
	if s.profiled {
		return fmt.Errorf("bolt: LoadProfile is one-shot (profile already loaded from %s)", s.profileDesc)
	}
	if s.analyzed {
		return fmt.Errorf("bolt: LoadProfile must precede Analyze/Optimize")
	}
	src := sources[0]
	if len(sources) > 1 {
		src = MergeShards(sources...)
	}
	loadStart := time.Now()
	fd, err := src.Load(cx)
	if err != nil {
		return fmt.Errorf("bolt: load profile (%s): %w", src.Describe(), err)
	}
	// Trace-only phase span: profile parsing happens before the binary
	// context exists, so it has no PassTiming row, but it still shows up
	// on the trace timeline.
	s.opts.Trace.Phase("profile:load", loadStart, time.Since(loadStart), 1)
	s.fd, s.profileDesc, s.profiled = fd, src.Describe(), true
	return nil
}

// Profile returns the loaded (merged, translated) profile, or nil.
func (s *Session) Profile() *profile.Fdata { return s.fd }

// Analyze builds the binary context — function discovery, disassembly,
// CFG construction — and applies the loaded profile. It is idempotent
// and implicit in Optimize; call it directly only for the report-only
// entry points (DynoStats, BadLayoutReport, PrintCFG, Shapes, Functions).
func (s *Session) Analyze(cx context.Context) error {
	if s.analyzed {
		return nil
	}
	bctx, err := core.NewContext(cx, s.file, s.opts)
	if err != nil {
		return err
	}
	if s.fd != nil {
		if err := bctx.ApplyProfile(cx, s.fd); err != nil {
			return err
		}
	}
	s.bctx, s.analyzed = bctx, true
	return nil
}

// Optimize runs the Table 1 pass pipeline and emits the rewritten
// binary. One-shot: the CFGs are mutated in place, so re-optimizing
// requires a fresh Session — and a failed or cancelled Optimize leaves
// the session unusable for the same reason (the pipeline may have
// partially transformed the CFGs). On success the Report (also available
// from s.Report) carries the counts, stats, dyno comparison, and
// per-phase timings; the output is retrieved with WriteFile, WriteTo, or
// Output.
func (s *Session) Optimize(cx context.Context) (*Report, error) {
	if s.optimized {
		return nil, fmt.Errorf("bolt: Optimize is one-shot; open a new Session to re-optimize")
	}
	if s.broken {
		return nil, fmt.Errorf("bolt: session unusable after a failed or cancelled Optimize; open a new Session")
	}
	if err := s.Analyze(cx); err != nil {
		s.broken = true
		return nil, err
	}
	var dynoBefore core.DynoStats
	if s.opts.DynoStats {
		dynoBefore = s.bctx.CollectDynoStats()
	}
	pm := core.NewPassManager(s.opts.Jobs)
	if err := pm.Run(cx, s.bctx, passes.BuildPipeline(s.opts)); err != nil {
		s.broken = true
		return nil, err
	}
	var dynoAfter core.DynoStats
	if s.opts.DynoStats {
		dynoAfter = s.bctx.CollectDynoStats()
	}
	res, err := s.bctx.Rewrite(cx)
	if err != nil {
		s.broken = true
		return nil, err
	}
	s.res, s.optimized = res, true
	s.rep = s.buildReport(dynoBefore, dynoAfter)
	return s.rep, nil
}

// Report returns the Optimize report, or nil before Optimize succeeded.
func (s *Session) Report() *Report { return s.rep }

// Output returns the optimized ELF image, or nil before Optimize.
func (s *Session) Output() *elfx.File {
	if s.res == nil {
		return nil
	}
	return s.res.File
}

// WriteFile serializes the optimized binary to path. Requires a
// successful Optimize; repeatable.
func (s *Session) WriteFile(path string) error {
	if s.res == nil {
		return fmt.Errorf("bolt: WriteFile before Optimize")
	}
	return s.res.File.WriteFile(path)
}

// WriteTo serializes the optimized binary to w. Requires a successful
// Optimize; repeatable.
func (s *Session) WriteTo(w io.Writer) (int64, error) {
	if s.res == nil {
		return 0, fmt.Errorf("bolt: WriteTo before Optimize")
	}
	data, err := s.res.File.Bytes()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// requireAnalyzed guards the report-only accessors. A broken session
// (failed or cancelled Optimize) is rejected too: its CFGs may be
// partially transformed, so shapes, stats, and dumps would describe a
// state that never corresponds to any binary.
func (s *Session) requireAnalyzed(what string) error {
	if s.broken {
		return fmt.Errorf("bolt: %s on a session whose Optimize failed or was cancelled; open a new Session", what)
	}
	if !s.analyzed {
		return fmt.Errorf("bolt: %s requires Analyze (or Optimize) first", what)
	}
	return nil
}

// DynoStats collects the paper's dynamic instruction statistics for the
// current CFG state: pre-pipeline when called after Analyze,
// post-pipeline after Optimize.
func (s *Session) DynoStats() (core.DynoStats, error) {
	if err := s.requireAnalyzed("DynoStats"); err != nil {
		return core.DynoStats{}, err
	}
	return s.bctx.CollectDynoStats(), nil
}

// Stats exposes the pipeline's counters (profile matching, per-pass
// work). The map is live — treat it as read-only; Report.Stats is a
// stable snapshot taken when Optimize finished.
func (s *Session) Stats() (map[string]int64, error) {
	if err := s.requireAnalyzed("Stats"); err != nil {
		return nil, err
	}
	return s.bctx.Stats, nil
}

// Functions returns the discovered functions in address order (after
// Analyze). Callers may inspect CFGs and profile annotations but must
// not mutate them.
func (s *Session) Functions() ([]*core.BinaryFunction, error) {
	if err := s.requireAnalyzed("Functions"); err != nil {
		return nil, err
	}
	return s.bctx.Funcs, nil
}

// Function returns the named function after Analyze (aliases resolve to
// their canonical function), or nil if unknown.
func (s *Session) Function(name string) (*core.BinaryFunction, error) {
	if err := s.requireAnalyzed("Function"); err != nil {
		return nil, err
	}
	return s.bctx.ByName[name], nil
}

// HottestFunctions returns the n most executed functions (after
// Analyze with a profile loaded).
func (s *Session) HottestFunctions(n int) ([]*core.BinaryFunction, error) {
	if err := s.requireAnalyzed("HottestFunctions"); err != nil {
		return nil, err
	}
	return s.bctx.HottestFunctions(n), nil
}

// PrintCFG writes the Figure 4-style CFG dump of the named function.
func (s *Session) PrintCFG(w io.Writer, name string) error {
	if err := s.requireAnalyzed("PrintCFG"); err != nil {
		return err
	}
	fn := s.bctx.ByName[name]
	if fn == nil {
		return fmt.Errorf("bolt: no function %q", name)
	}
	s.bctx.PrintCFG(w, fn)
	return nil
}

// BadLayoutReport renders the -report-bad-layout analysis (cold blocks
// interleaved with hot ones), limited to the worst `limit` functions.
func (s *Session) BadLayoutReport(limit int) (string, error) {
	if err := s.requireAnalyzed("BadLayoutReport"); err != nil {
		return "", err
	}
	return s.bctx.BadLayoutReport(limit), nil
}

// FlowAccuracy reports the count-weighted flow-equation consistency of
// the applied profile before and after the profile:infer stage (1.0 =
// every block's count equals its out-flow). With minimum-cost-flow
// inference active (see core.Options.InferFlow) the after value is 1.0
// by construction. Requires a profile and Analyze.
func (s *Session) FlowAccuracy() (before, after float64, err error) {
	if err := s.requireAnalyzed("FlowAccuracy"); err != nil {
		return 0, 0, err
	}
	if s.fd == nil {
		return 0, 0, fmt.Errorf("bolt: FlowAccuracy requires a loaded profile")
	}
	return s.bctx.FlowAccBefore, s.bctx.FlowAccAfter, nil
}

// Shapes computes the per-function CFG shapes of the input binary — the
// v2-profile payload that makes stale matching possible (vmrun -record
// embeds them).
func (s *Session) Shapes() (map[string]profile.FuncShape, error) {
	if err := s.requireAnalyzed("Shapes"); err != nil {
		return nil, err
	}
	return core.ComputeShapes(s.bctx), nil
}

// PipelineNames lists the pass pipeline (paper Table 1) the given
// options select, in execution order — gobolt's -print-pipeline.
func PipelineNames(opts ...Option) []string {
	o := core.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	var names []string
	for _, p := range passes.BuildPipeline(o) {
		names = append(names, p.Name())
	}
	return names
}

func (s *Session) buildReport(dynoBefore, dynoAfter core.DynoStats) *Report {
	rep := &Report{
		Input:        s.input,
		InputSHA256:  s.inputSHA,
		InputSize:    s.inputSize,
		Options:      s.opts,
		MovedFuncs:   s.res.MovedFuncs,
		SkippedFuncs: s.res.SkippedFuncs,
		FoldedFuncs:  s.res.FoldedFuncs,
		SplitFuncs:   s.res.SplitFuncs,
		SimpleFuncs:  len(s.bctx.SimpleFuncs()),
		HotTextSize:  s.res.HotTextSize,
		ColdTextSize: s.res.ColdTextSize,
		OrigTextSize: s.res.OrigTextSize,
		HasDynoStats: s.opts.DynoStats,
		DynoBefore:   dynoBefore,
		DynoAfter:    dynoAfter,
		Stats:        make(map[string]int64, len(s.bctx.Stats)),
		LoadTimings:  append([]core.PassTiming(nil), s.bctx.LoadTimings...),
		PassTimings:  append([]core.PassTiming(nil), s.bctx.PassTimings...),
		EmitTimings:  append([]core.PassTiming(nil), s.bctx.EmitTimings...),
	}
	for k, v := range s.bctx.Stats {
		rep.Stats[k] = v
	}
	if s.fd != nil {
		rep.ProfileSource = s.profileDesc
		rep.ProfileBranches = len(s.fd.Branches)
		rep.ProfileSamples = len(s.fd.Samples)
		rep.ProfileTotalCount = s.fd.TotalBranchCount()
		rep.FlowAccBefore = s.bctx.FlowAccBefore
		rep.FlowAccAfter = s.bctx.FlowAccAfter
		rep.InferredFuncs = s.bctx.InferredFuncs
	}
	if reg := s.bctx.Metrics; reg != nil {
		rep.Metrics = reg.Snapshot()
	}
	rep.trace = s.opts.Trace
	return rep
}

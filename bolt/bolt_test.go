package bolt_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gobolt/bolt"
	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/ld"
	"gobolt/internal/passes"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/vm"
	"gobolt/internal/workload"
)

// buildTiny compiles and links the Tiny synthetic workload with
// relocations kept (the paper's relocations mode).
func buildTiny(t *testing.T) *elfx.File {
	t.Helper()
	objs, err := cc.Compile(workload.Generate(workload.Tiny()), cc.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return res.File
}

func record(t *testing.T, f *elfx.File) *profile.Fdata {
	t.Helper()
	fd, _, err := perf.RecordFile(f, perf.DefaultMode(), 0)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return fd
}

func runVM(t *testing.T, f *elfx.File) uint64 {
	t.Helper()
	m, err := vm.New(f)
	if err != nil {
		t.Fatalf("vm load: %v", err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatalf("vm run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("vm did not halt")
	}
	return m.Result()
}

// optimizeViaSession drives the staged bolt API end to end and returns
// the serialized output plus the report.
func optimizeViaSession(t *testing.T, f *elfx.File, fd *profile.Fdata, jobs int, extra ...bolt.Option) ([]byte, *bolt.Report, *bolt.Session) {
	t.Helper()
	cx := context.Background()
	sess, err := bolt.OpenELF(f, append([]bolt.Option{bolt.WithJobs(jobs)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		t.Fatalf("optimize (jobs=%d): %v", jobs, err)
	}
	var buf bytes.Buffer
	if _, err := sess.WriteTo(&buf); err != nil {
		t.Fatalf("serialize (jobs=%d): %v", jobs, err)
	}
	return buf.Bytes(), rep, sess
}

// TestSessionMatchesDirectPipeline is the API-redesign contract: the
// staged Session (open → profile → optimize → write) emits a binary
// byte-identical to the hand-assembled core driver path the CLIs used
// before the bolt package existed.
func TestSessionMatchesDirectPipeline(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	cx := context.Background()

	// Old driver path, assembled directly from core primitives.
	opts := core.DefaultOptions()
	ctx, err := core.NewContext(cx, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.ApplyProfile(cx, fd); err != nil {
		t.Fatal(err)
	}
	if err := core.NewPassManager(opts.Jobs).Run(cx, ctx, passes.BuildPipeline(opts)); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Rewrite(cx)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := res.File.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// New API path over the same input and profile.
	viaAPI, rep, _ := optimizeViaSession(t, f, fd, 0)
	if !bytes.Equal(direct, viaAPI) {
		t.Fatalf("bolt API output differs from the direct core pipeline (%d vs %d bytes)",
			len(viaAPI), len(direct))
	}
	if rep.MovedFuncs != res.MovedFuncs || rep.FoldedFuncs != res.FoldedFuncs ||
		rep.SplitFuncs != res.SplitFuncs || rep.HotTextSize != res.HotTextSize {
		t.Errorf("report disagrees with rewrite result: %+v vs %+v", rep, res)
	}
	if !reflect.DeepEqual(rep.Stats, ctx.Stats) {
		t.Errorf("report stats diverge from direct pipeline stats")
	}

	// And the output still computes the same checksum as the input.
	want := runVM(t, f)
	out, err := elfx.Read(viaAPI)
	if err != nil {
		t.Fatal(err)
	}
	if got := runVM(t, out); got != want {
		t.Fatalf("semantic change through the bolt API: got %d want %d", got, want)
	}
}

// TestPipelineDeterministicAcrossJobs is the parallel pipeline's
// end-to-end contract, now proven through the public entry points: the
// emitted binary is byte-identical and the stat counters exactly equal
// for any worker count, across all three stages — the staged loader
// (parallel disassembly+CFG), the function passes, and the concurrent
// emitter. Run under -race this also exercises every fan-out phase.
func TestPipelineDeterministicAcrossJobs(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	serialBytes, serialRep, _ := optimizeViaSession(t, f, fd, 1)
	for _, jobs := range []int{2, 8} {
		gotBytes, rep, _ := optimizeViaSession(t, f, fd, jobs)
		if !bytes.Equal(serialBytes, gotBytes) {
			t.Errorf("jobs=%d: emitted binary differs from jobs=1 (%d vs %d bytes)",
				jobs, len(gotBytes), len(serialBytes))
		}
		if !reflect.DeepEqual(serialRep.Stats, rep.Stats) {
			t.Errorf("jobs=%d: stats diverge:\n  jobs=1: %v\n  jobs=%d: %v",
				jobs, serialRep.Stats, jobs, rep.Stats)
		}
		if len(rep.PassTimings) == 0 {
			t.Errorf("jobs=%d: no pass timings recorded", jobs)
		}
		// Loader and emitter phases must be instrumented and scheduled
		// on the pool, as must the profile-application and -inference
		// stages and the overlapped discovery scans.
		assertParallelPhase(t, jobs, rep.LoadTimings, "load:discover")
		assertParallelPhase(t, jobs, rep.LoadTimings, "load:disasm+cfg")
		assertParallelPhase(t, jobs, rep.LoadTimings, "profile:apply")
		assertParallelPhase(t, jobs, rep.LoadTimings, "profile:infer")
		assertParallelPhase(t, jobs, rep.EmitTimings, "emit:functions")
		// The emitter's former serial back half is now three phases:
		// address assignment stays a serial prefix scan, while patching
		// and metadata rebuild fan out.
		assertSerialPhase(t, jobs, rep.EmitTimings, "emit:layout")
		assertParallelPhase(t, jobs, rep.EmitTimings, "emit:patch")
		assertParallelPhase(t, jobs, rep.EmitTimings, "emit:metadata")
		// ICF's hashing runs as a parallel function pass; only the fold
		// remains a barrier.
		assertParallelPhase(t, jobs, rep.PassTimings, "icf-1-hash")
		assertParallelPhase(t, jobs, rep.PassTimings, "icf-2-hash")
	}

	// With minimum-cost-flow inference forced on for the LBR profile,
	// the output must stay byte-identical across worker counts too, and
	// the inferred counts must be exactly consistent.
	mcf1, mcfRep1, _ := optimizeViaSession(t, f, fd, 1, bolt.WithInferFlow(core.InferAlways))
	for _, jobs := range []int{2, 8} {
		mcfN, repN, _ := optimizeViaSession(t, f, fd, jobs, bolt.WithInferFlow(core.InferAlways))
		if !bytes.Equal(mcf1, mcfN) {
			t.Errorf("infer-flow jobs=%d: emitted binary differs from jobs=1 (%d vs %d bytes)",
				jobs, len(mcfN), len(mcf1))
		}
		if !reflect.DeepEqual(mcfRep1.Stats, repN.Stats) {
			t.Errorf("infer-flow jobs=%d: stats diverge:\n  jobs=1: %v\n  jobs=%d: %v",
				jobs, mcfRep1.Stats, jobs, repN.Stats)
		}
	}
	if mcfRep1.InferredFuncs == 0 {
		t.Error("InferAlways reported no inferred functions")
	}
	if mcfRep1.FlowAccAfter != 1.0 {
		t.Errorf("InferAlways left FlowAccAfter %v, want 1.0", mcfRep1.FlowAccAfter)
	}
}

// assertParallelPhase checks that the named phase was recorded and fanned
// out over more than one worker.
func assertParallelPhase(t *testing.T, jobs int, timings []core.PassTiming, name string) {
	t.Helper()
	for _, pt := range timings {
		if pt.Name != name {
			continue
		}
		if !pt.Parallel || pt.Jobs < 2 {
			t.Errorf("jobs=%d: phase %s not parallel: %+v", jobs, name, pt)
		}
		return
	}
	t.Errorf("jobs=%d: phase %s missing from timings", jobs, name)
}

// assertSerialPhase checks that the named phase was recorded and stayed
// a serial barrier regardless of the worker count.
func assertSerialPhase(t *testing.T, jobs int, timings []core.PassTiming, name string) {
	t.Helper()
	for _, pt := range timings {
		if pt.Name != name {
			continue
		}
		if pt.Parallel || pt.Jobs != 1 {
			t.Errorf("jobs=%d: phase %s not serial: %+v", jobs, name, pt)
		}
		return
	}
	t.Errorf("jobs=%d: phase %s missing from timings", jobs, name)
}

// TestOptimizeCancellation cancels Optimize before and during the
// pipeline. Under -race the concurrent variant also proves the fan-out
// phases shut down cleanly when the context dies mid-flight.
func TestOptimizeCancellation(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)

	// Pre-cancelled context: every stage fails fast with the context
	// error and produces no output.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := bolt.OpenELF(f, bolt.WithJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadProfile(cancelled, bolt.Fdata(fd)); !errors.Is(err, context.Canceled) {
		t.Fatalf("LoadProfile under cancelled context: %v", err)
	}
	if _, err := sess.Optimize(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Optimize under cancelled context: %v", err)
	}
	if sess.Output() != nil {
		t.Fatal("cancelled Optimize produced output")
	}

	// Mid-pipeline: cancel from a second goroutine while the pipeline
	// runs. The timer races the (fast) pipeline, so both outcomes are
	// legal; what must hold is that a cancelled run reports
	// context.Canceled, yields no output, and poisons the session.
	for _, delay := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		cx, cancelMid := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancelMid()
		}()
		s, err := bolt.OpenELF(f, bolt.WithJobs(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProfile(context.Background(), bolt.Fdata(fd)); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Optimize(cx)
		switch {
		case err == nil:
			if rep == nil || s.Output() == nil {
				t.Fatalf("delay=%v: successful Optimize without report/output", delay)
			}
		case errors.Is(err, context.Canceled):
			if s.Output() != nil {
				t.Fatalf("delay=%v: cancelled Optimize left output", delay)
			}
			if _, err := s.Optimize(context.Background()); err == nil {
				t.Fatalf("delay=%v: cancelled session allowed a re-run", delay)
			}
		default:
			t.Fatalf("delay=%v: unexpected error %v", delay, err)
		}
		cancelMid()
	}
}

// TestStageOrdering pins the one-shot contracts documented in the
// package comment.
func TestStageOrdering(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	cx := context.Background()

	sess, err := bolt.OpenELF(f)
	if err != nil {
		t.Fatal(err)
	}
	// Report-only accessors before Analyze must fail, not panic.
	if _, err := sess.Stats(); err == nil {
		t.Error("Stats before Analyze succeeded")
	}
	if err := sess.WriteFile(t.TempDir() + "/x"); err == nil {
		t.Error("WriteFile before Optimize succeeded")
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		t.Fatal(err)
	}
	// Second LoadProfile: one-shot.
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err == nil {
		t.Error("second LoadProfile succeeded")
	}
	if _, err := sess.Optimize(cx); err != nil {
		t.Fatal(err)
	}
	// LoadProfile after the pipeline ran: stage violation.
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err == nil {
		t.Error("LoadProfile after Optimize succeeded")
	}
	// Second Optimize: one-shot.
	if _, err := sess.Optimize(cx); err == nil {
		t.Error("second Optimize succeeded")
	}
	// Analyze stays idempotent and the accessors work post-Optimize.
	if err := sess.Analyze(cx); err != nil {
		t.Errorf("post-Optimize Analyze: %v", err)
	}
	if st, err := sess.Stats(); err != nil || len(st) == 0 {
		t.Errorf("post-Optimize Stats: %v (%d entries)", err, len(st))
	}
}

// TestMergedShardSource checks that LoadProfile with several sources
// behaves like profile.Merge over the shards.
func TestMergedShardSource(t *testing.T) {
	f := buildTiny(t)
	fd := record(t, f)
	cx := context.Background()

	merged, err := bolt.MergeShards(bolt.Fdata(fd), bolt.Fdata(fd)).Load(cx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.TotalBranchCount(), 2*fd.TotalBranchCount(); got != want {
		t.Fatalf("merged total %d, want doubled %d", got, want)
	}

	sess, err := bolt.OpenELF(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd), bolt.Fdata(fd)); err != nil {
		t.Fatal(err)
	}
	if got := sess.Profile().TotalBranchCount(); got != merged.TotalBranchCount() {
		t.Fatalf("LoadProfile(multi) total %d, want %d", got, merged.TotalBranchCount())
	}
}

// TestZeroOptionsNoFootgun: the historical `core.Options{}` zero value
// now means "defaults", so an analysis-only context gets stale matching
// and the full pass set instead of silently disabling everything.
func TestZeroOptionsNoFootgun(t *testing.T) {
	if got := (core.Options{}).Normalized(); !reflect.DeepEqual(got, core.DefaultOptions()) {
		t.Fatalf("Options{}.Normalized() = %+v, want DefaultOptions", got)
	}
	// The operational knobs (Jobs, TimePasses, DynoStats) don't count as
	// configuration: Options{Jobs: n} means "defaults at n workers" for
	// every n, with the knobs preserved — no discontinuity at n=0.
	for _, jobs := range []int{0, 1, 4} {
		got := (core.Options{Jobs: jobs, DynoStats: true}).Normalized()
		want := core.DefaultOptions()
		want.Jobs, want.DynoStats = jobs, true
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Options{Jobs:%d}.Normalized() = %+v, want defaults with knobs kept", jobs, got)
		}
	}
	// An explicit pass-selection field marks the Options as configured.
	explicit := core.Options{ICF: true, Jobs: 2}
	if got := explicit.Normalized(); !reflect.DeepEqual(got, explicit) {
		t.Fatalf("configured Options were rewritten: %+v", got)
	}
	f := buildTiny(t)
	ctx, err := core.NewContext(context.Background(), f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Opts.StaleMatching || !ctx.Opts.ICF {
		t.Fatalf("zero Options reached the pipeline un-normalized: %+v", ctx.Opts)
	}
	if len(passes.BuildPipeline(core.Options{})) != len(passes.BuildPipeline(core.DefaultOptions())) {
		t.Fatal("BuildPipeline treats the zero value as all-off")
	}
}

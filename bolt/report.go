package bolt

import (
	"fmt"
	"io"
	"strings"

	"gobolt/internal/bincheck"
	"gobolt/internal/core"
	"gobolt/internal/obsv"
)

// Report is the structured result of Session.Optimize — everything the
// old drivers used to printf, as data. CLI adapters render it; library
// callers assert on it.
type Report struct {
	// Input is the path (or "<memory>"/"<reader>") the session opened.
	Input string

	// InputSHA256/InputSize fingerprint the exact input image the run
	// describes (sha256 of the serialized ELF, hex-encoded).
	InputSHA256 string
	InputSize   int

	// Options is the resolved option set the session ran with (defaults
	// plus open-time Option values).
	Options core.Options

	// Function accounting from the rewrite: moved into the new layout,
	// skipped as non-simple, folded by ICF, split hot/cold. SimpleFuncs
	// is the final rewritable-function count.
	MovedFuncs, SkippedFuncs, FoldedFuncs, SplitFuncs, SimpleFuncs int

	// Section sizes of the new layout versus the original .text.
	HotTextSize, ColdTextSize, OrigTextSize uint64

	// Stats is a snapshot of every pipeline counter (profile matching,
	// per-pass work) taken when Optimize finished.
	Stats map[string]int64

	// DynoBefore/DynoAfter hold the paper's dynamic instruction
	// statistics around the pass pipeline; collected only when the
	// session ran WithDynoStats (HasDynoStats).
	HasDynoStats          bool
	DynoBefore, DynoAfter core.DynoStats

	// Per-phase wall-clock instrumentation: the loader phases
	// (discovery, parallel disassembly+CFG), each optimization pass, and
	// the emission phases (parallel code generation, layout+patch).
	LoadTimings, PassTimings, EmitTimings []core.PassTiming

	// Profile provenance: source description and record counts of the
	// profile that drove the run (zero values when none was loaded).
	ProfileSource     string
	ProfileBranches   int
	ProfileSamples    int
	ProfileTotalCount uint64

	// FlowAccBefore/FlowAccAfter are the count-weighted flow-equation
	// consistency of the profiled CFGs before and after the
	// profile:infer stage (1.0 = every block's count equals its
	// out-flow); InferredFuncs counts the functions rebalanced by the
	// minimum-cost-flow solver (0 when inference did not run).
	FlowAccBefore, FlowAccAfter float64
	InferredFuncs               int

	// Metrics is the typed registry snapshot behind Stats: the same
	// counters plus gauges and the per-function quality histograms
	// (flow accuracy, stale-match quality).
	Metrics *obsv.Snapshot

	// Verify holds the independent static verification of the output
	// binary, filled by Session.VerifyOutput (nil until then). The
	// verifier re-reads the serialized output from scratch — see
	// internal/bincheck.
	Verify *bincheck.Result

	// Occupancy holds the derived per-phase worker-pool statistics
	// (utilization, task-duration quantiles, stragglers). Present only
	// when the session ran WithTracer, and derived lazily — read it
	// through OccupancyStats; deriving statistics from tens of
	// thousands of spans is report-rendering work that must not count
	// against the pipeline's wall clock.
	Occupancy []obsv.PhaseStats

	// trace is the session's tracer, kept for the lazy derivation.
	trace *obsv.Tracer
}

// OccupancyStats derives (once) and returns the per-phase worker-pool
// statistics from the session's span trace; nil for untraced runs.
func (r *Report) OccupancyStats() []obsv.PhaseStats {
	if r.Occupancy == nil && r.trace != nil {
		r.Occupancy = obsv.Occupancy(r.trace.Spans())
	}
	return r.Occupancy
}

// Timings returns all three instrumentation groups concatenated in
// execution order (load → passes → emit).
func (r *Report) Timings() []core.PassTiming {
	out := make([]core.PassTiming, 0, len(r.LoadTimings)+len(r.PassTimings)+len(r.EmitTimings))
	out = append(out, r.LoadTimings...)
	out = append(out, r.PassTimings...)
	out = append(out, r.EmitTimings...)
	return out
}

// WriteTimings renders the -time-passes report: per-phase wall time,
// pipeline share, scheduling mode, and stat deltas for the whole
// pipeline in one table, followed by the pool-occupancy table when the
// session traced (WithTracer).
func (r *Report) WriteTimings(w io.Writer) {
	core.WriteTimings(w, r.Timings())
	obsv.WriteOccupancy(w, r.OccupancyStats())
}

// WriteDynoStats renders the before/after dyno-stats comparison (paper
// Table 2). No-op unless the session ran WithDynoStats.
func (r *Report) WriteDynoStats(w io.Writer) {
	if !r.HasDynoStats {
		return
	}
	core.PrintComparison(w, r.Input, r.DynoBefore, r.DynoAfter)
}

// Summary renders the human-readable two-line result the gobolt CLI
// prints after a successful run.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "moved %d functions (%d skipped non-simple, %d folded, %d split)\n",
		r.MovedFuncs, r.SkippedFuncs, r.FoldedFuncs, r.SplitFuncs)
	fmt.Fprintf(&sb, "hot text %d bytes, cold text %d bytes (original %d)",
		r.HotTextSize, r.ColdTextSize, r.OrigTextSize)
	return sb.String()
}

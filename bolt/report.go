package bolt

import (
	"fmt"
	"io"
	"strings"

	"gobolt/internal/core"
)

// Report is the structured result of Session.Optimize — everything the
// old drivers used to printf, as data. CLI adapters render it; library
// callers assert on it.
type Report struct {
	// Input is the path (or "<memory>"/"<reader>") the session opened.
	Input string

	// Function accounting from the rewrite: moved into the new layout,
	// skipped as non-simple, folded by ICF, split hot/cold. SimpleFuncs
	// is the final rewritable-function count.
	MovedFuncs, SkippedFuncs, FoldedFuncs, SplitFuncs, SimpleFuncs int

	// Section sizes of the new layout versus the original .text.
	HotTextSize, ColdTextSize, OrigTextSize uint64

	// Stats is a snapshot of every pipeline counter (profile matching,
	// per-pass work) taken when Optimize finished.
	Stats map[string]int64

	// DynoBefore/DynoAfter hold the paper's dynamic instruction
	// statistics around the pass pipeline; collected only when the
	// session ran WithDynoStats (HasDynoStats).
	HasDynoStats          bool
	DynoBefore, DynoAfter core.DynoStats

	// Per-phase wall-clock instrumentation: the loader phases
	// (discovery, parallel disassembly+CFG), each optimization pass, and
	// the emission phases (parallel code generation, layout+patch).
	LoadTimings, PassTimings, EmitTimings []core.PassTiming

	// Profile provenance: source description and record counts of the
	// profile that drove the run (zero values when none was loaded).
	ProfileSource     string
	ProfileBranches   int
	ProfileSamples    int
	ProfileTotalCount uint64

	// FlowAccBefore/FlowAccAfter are the count-weighted flow-equation
	// consistency of the profiled CFGs before and after the
	// profile:infer stage (1.0 = every block's count equals its
	// out-flow); InferredFuncs counts the functions rebalanced by the
	// minimum-cost-flow solver (0 when inference did not run).
	FlowAccBefore, FlowAccAfter float64
	InferredFuncs               int
}

// Timings returns all three instrumentation groups concatenated in
// execution order (load → passes → emit).
func (r *Report) Timings() []core.PassTiming {
	out := make([]core.PassTiming, 0, len(r.LoadTimings)+len(r.PassTimings)+len(r.EmitTimings))
	out = append(out, r.LoadTimings...)
	out = append(out, r.PassTimings...)
	out = append(out, r.EmitTimings...)
	return out
}

// WriteTimings renders the -time-passes report: per-phase wall time,
// pipeline share, scheduling mode, and stat deltas for the whole
// pipeline in one table.
func (r *Report) WriteTimings(w io.Writer) {
	core.WriteTimings(w, r.Timings())
}

// WriteDynoStats renders the before/after dyno-stats comparison (paper
// Table 2). No-op unless the session ran WithDynoStats.
func (r *Report) WriteDynoStats(w io.Writer) {
	if !r.HasDynoStats {
		return
	}
	core.PrintComparison(w, r.Input, r.DynoBefore, r.DynoAfter)
}

// Summary renders the human-readable two-line result the gobolt CLI
// prints after a successful run.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "moved %d functions (%d skipped non-simple, %d folded, %d split)\n",
		r.MovedFuncs, r.SkippedFuncs, r.FoldedFuncs, r.SplitFuncs)
	fmt.Fprintf(&sb, "hot text %d bytes, cold text %d bytes (original %d)",
		r.HotTextSize, r.ColdTextSize, r.OrigTextSize)
	return sb.String()
}
